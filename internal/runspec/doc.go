// Package runspec defines the canonical description of one simulation
// run: a JSON-round-trippable Spec naming the benchmark, monitor,
// acceleration mode, topology, seed, instruction budget, fault plan, and
// execution knobs, with a deterministic canonical encoding and a stable
// content hash.
//
// Every layer of the repository that used to carry its own private notion
// of "a run" — the serving API's submission schema, the experiment
// harness's per-table cell tuples, the system layer's baseline cache key —
// constructs or consumes a Spec instead. Because simulations are
// byte-deterministic functions of their Spec (PR 1), Spec.Hash is a
// content address: internal/rcache keys completed results by it, which is
// what makes sweeps resumable (fadebench -cache-dir), shardable
// (fadebench -shard i/n), and instantly replayable (fadeserve's
// "cached": true).
//
// The hash covers exactly the fields that can change a run's result or
// its metrics dump, after normalization (zero values are folded onto
// their documented defaults, so an explicit default hashes identically to
// an omitted field). Execution budgets that cannot change a completed
// result — the wall-clock watchdog — and out-of-Spec execution knobs
// (worker-pool width, output flags) are excluded; see DESIGN.md's
// "Spec canonicalization" section and the golden-hash test, which pins
// the encoding so an accidental change (silently invalidating every disk
// cache) fails loudly.
package runspec
