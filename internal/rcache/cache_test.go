package rcache

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"fade/internal/obs"
)

func key(s string) Key { return sha256.Sum256([]byte(s)) }

func TestDoComputesOnceAndCaches(t *testing.T) {
	c := NewMem(8)
	var calls atomic.Int32
	compute := func(context.Context) ([]byte, error) {
		calls.Add(1)
		return []byte("value"), nil
	}
	v, src, err := c.Do(context.Background(), key("a"), compute)
	if err != nil || string(v) != "value" || src != SourceMiss {
		t.Fatalf("first Do = %q/%v/%v", v, src, err)
	}
	v, src, err = c.Do(context.Background(), key("a"), compute)
	if err != nil || string(v) != "value" || src != SourceMem {
		t.Fatalf("second Do = %q/%v/%v", v, src, err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestSingleFlight(t *testing.T) {
	c := NewMem(8)
	var calls atomic.Int32
	gate := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), key("shared"), func(context.Context) ([]byte, error) {
				calls.Add(1)
				<-gate
				return []byte("shared-value"), nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			results[i] = string(v)
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", n)
	}
	for i, r := range results {
		if r != "shared-value" {
			t.Fatalf("waiter %d got %q", i, r)
		}
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := NewMem(8)
	boom := errors.New("boom")
	var calls atomic.Int32
	fail := func(context.Context) ([]byte, error) { calls.Add(1); return nil, boom }
	if _, _, err := c.Do(context.Background(), key("e"), fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not be cached: the next call retries.
	v, src, err := c.Do(context.Background(), key("e"), func(context.Context) ([]byte, error) {
		calls.Add(1)
		return []byte("recovered"), nil
	})
	if err != nil || string(v) != "recovered" || src != SourceMiss {
		t.Fatalf("retry = %q/%v/%v", v, src, err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("compute ran %d times, want 2", n)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (only the success cached)", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewMem(2)
	ctx := context.Background()
	mk := func(s string) func(context.Context) ([]byte, error) {
		return func(context.Context) ([]byte, error) { return []byte(s), nil }
	}
	c.Do(ctx, key("a"), mk("a"))
	c.Do(ctx, key("b"), mk("b"))
	c.Do(ctx, key("a"), mk("a")) // touch a: b becomes LRU
	c.Do(ctx, key("c"), mk("c")) // evicts b
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, src, _ := c.Do(ctx, key("a"), mk("a")); src != SourceMem {
		t.Fatalf("a evicted (src %v), want retained", src)
	}
	if _, src, _ := c.Do(ctx, key("b"), mk("b")); src != SourceMiss {
		t.Fatalf("b retained (src %v), want evicted", src)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Options{MemEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want := []byte(`{"result":"payload"}`)
	if _, src, err := c1.Do(ctx, key("persist"), func(context.Context) ([]byte, error) { return want, nil }); err != nil || src != SourceMiss {
		t.Fatalf("seed Do = %v/%v", src, err)
	}

	// A fresh cache over the same directory (a resumed process) must serve
	// the entry from disk without computing.
	c2, err := New(Options{MemEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	v, src, err := c2.Do(ctx, key("persist"), func(context.Context) ([]byte, error) {
		t.Fatal("compute ran despite disk entry")
		return nil, nil
	})
	if err != nil || string(v) != string(want) || src != SourceDisk {
		t.Fatalf("resumed Do = %q/%v/%v", v, src, err)
	}
	// Promoted to memory: a second read is a memory hit.
	if _, src, _ := c2.Do(ctx, key("persist"), nil); src != SourceMem {
		t.Fatalf("src = %v, want mem after promotion", src)
	}
	st := c2.Stats()
	if st.DiskReads != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 disk read / 0 misses", st)
	}
}

func TestDiskCorruptionTolerated(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	mutations := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bit-flip":  func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"bad-magic": func(b []byte) []byte { copy(b, "XXXX"); return b },
		"bad-version": func(b []byte) []byte {
			b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0xff
			return b
		},
		"empty": func([]byte) []byte { return nil },
	}
	i := 0
	for name, mutate := range mutations {
		i++
		k := key(fmt.Sprintf("corrupt-%d", i))
		c, err := New(Options{MemEntries: 8, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		want := []byte("good-" + name)
		if _, _, err := c.Do(ctx, k, func(context.Context) ([]byte, error) { return want, nil }); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("%x.rc", k))
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: entry not on disk: %v", name, err)
		}
		if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}

		// A fresh cache must detect the damage, count it, evict the file,
		// and recompute — never panic or return the corrupt bytes.
		fresh, err := New(Options{MemEntries: 8, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		v, src, err := fresh.Do(ctx, k, func(context.Context) ([]byte, error) { return want, nil })
		if err != nil || string(v) != string(want) || src != SourceMiss {
			t.Fatalf("%s: Do after corruption = %q/%v/%v", name, v, src, err)
		}
		if st := fresh.Stats(); st.DiskCorrupt != 1 {
			t.Fatalf("%s: DiskCorrupt = %d, want 1", name, st.DiskCorrupt)
		}
		// The rewrite must have replaced the corrupt file with a valid one.
		again, _ := New(Options{MemEntries: 8, Dir: dir})
		if v, src, _ := again.Do(ctx, k, nil); string(v) != string(want) || src != SourceDisk {
			t.Fatalf("%s: entry not healed: %q/%v", name, v, src)
		}
	}
}

// TestCrashMidWriteRecovery simulates a process dying inside diskPut: a
// partially written tmp-*.rc never renamed into place, alongside a final
// entry torn mid-write. A fresh cache over the directory must sweep the
// temp debris, treat the torn entry as corrupt (count, evict, recompute),
// and leave healthy entries untouched.
func TestCrashMidWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	c1, err := New(Options{MemEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	healthy, torn := key("survivor"), key("torn")
	if _, _, err := c1.Do(ctx, healthy, func(context.Context) ([]byte, error) { return []byte("ok"), nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c1.Do(ctx, torn, func(context.Context) ([]byte, error) { return []byte("torn-payload"), nil }); err != nil {
		t.Fatal(err)
	}

	// The crash: a half-written temp file that never got renamed...
	entry := encodeEntry([]byte("never finished"))
	tmpPath := filepath.Join(dir, "tmp-123456.rc")
	if err := os.WriteFile(tmpPath, entry[:len(entry)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// ...and a final entry truncated mid-write (torn page).
	tornPath := filepath.Join(dir, fmt.Sprintf("%x.rc", torn))
	raw, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart: New sweeps the temp debris.
	c2, err := New(Options{MemEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmpPath); !os.IsNotExist(err) {
		t.Fatalf("leftover temp file survived New: stat err = %v", err)
	}
	// The torn entry is detected, counted, evicted, and recomputed.
	var recomputed atomic.Int32
	v, src, err := c2.Do(ctx, torn, func(context.Context) ([]byte, error) {
		recomputed.Add(1)
		return []byte("torn-payload"), nil
	})
	if err != nil || string(v) != "torn-payload" || src != SourceMiss || recomputed.Load() != 1 {
		t.Fatalf("torn entry Do = %q/%v/%v (recomputed %d)", v, src, err, recomputed.Load())
	}
	if st := c2.Stats(); st.DiskCorrupt != 1 {
		t.Fatalf("DiskCorrupt = %d, want 1", st.DiskCorrupt)
	}
	// The healthy neighbor still reads from disk, untouched by recovery.
	if v, src, err := c2.Do(ctx, healthy, nil); err != nil || string(v) != "ok" || src != SourceDisk {
		t.Fatalf("healthy entry Do = %q/%v/%v", v, src, err)
	}
	// The recompute healed the torn file on disk.
	c3, _ := New(Options{MemEntries: 8, Dir: dir})
	if v, src, _ := c3.Do(ctx, torn, nil); string(v) != "torn-payload" || src != SourceDisk {
		t.Fatalf("torn entry not healed: %q/%v", v, src)
	}
}

func TestGetPut(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{MemEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(key("g")); ok {
		t.Fatal("Get hit on empty cache")
	}
	c.Put(key("g"), []byte("gv"))
	v, src, ok := c.Get(key("g"))
	if !ok || string(v) != "gv" || src != SourceMem {
		t.Fatalf("Get = %q/%v/%v", v, src, ok)
	}
	// Fresh process: disk only.
	c2, _ := New(Options{MemEntries: 8, Dir: dir})
	if v, src, ok := c2.Get(key("g")); !ok || string(v) != "gv" || src != SourceDisk {
		t.Fatalf("fresh Get = %q/%v/%v", v, src, ok)
	}
}

func TestReset(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{MemEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key("r"), []byte("rv"))
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("len = %d after Reset", c.Len())
	}
	// Disk survives Reset (it is a process-memory hook, not a wipe).
	if _, src, ok := c.Get(key("r")); !ok || src != SourceDisk {
		t.Fatalf("disk entry lost on Reset (src %v ok %v)", src, ok)
	}
}

// TestMetricsDocumented pins the cache.* namespace to docs/METRICS.md the
// same way the obs and serve namespaces are pinned: every emitted name
// must appear in the doc.
func TestMetricsDocumented(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "METRICS.md"))
	if err != nil {
		t.Fatal(err)
	}
	c := NewMem(8)
	reg := obs.NewRegistry()
	reg.Register(c.Collector())
	snap := reg.Snapshot()
	if len(snap.Values) == 0 {
		t.Fatal("collector emitted nothing")
	}
	for _, v := range snap.Values {
		if !strings.Contains(string(doc), v.Name) {
			t.Errorf("metric %q not documented in docs/METRICS.md", v.Name)
		}
	}
}
