package rcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"fade/internal/obs"
)

// Key is a content address: runspec.Spec.Hash, or any other SHA-256 the
// caller derives from canonical bytes.
type Key = [32]byte

// Source reports where Do found (or put) a value.
type Source int

const (
	// SourceMiss: the value was computed by this call (and cached).
	SourceMiss Source = iota
	// SourceMem: served from the in-memory LRU.
	SourceMem
	// SourceDisk: served from the disk backend (and promoted to memory).
	SourceDisk
)

// String returns the source name for logs and test failures.
func (s Source) String() string {
	switch s {
	case SourceMem:
		return "mem"
	case SourceDisk:
		return "disk"
	default:
		return "miss"
	}
}

// Options configures a Cache.
type Options struct {
	// MemEntries bounds the in-memory LRU (0 = 512 entries).
	MemEntries int
	// Dir, when non-empty, enables the persistent disk backend; it is
	// created if missing.
	Dir string
}

// Stats is a point-in-time copy of the cache's counters.
type Stats struct {
	Hits             uint64 // memory + disk hits
	Misses           uint64 // computations performed
	SingleFlightWait uint64 // callers that waited on another's computation
	DiskReads        uint64 // entries served from disk
	DiskWrites       uint64 // entries persisted to disk
	DiskCorrupt      uint64 // corrupt disk entries detected and evicted
}

// Cache is a content-addressed result store: a bounded memory LRU over an
// optional checksummed disk backend, with single-flight de-duplication.
// All methods are safe for concurrent use.
type Cache struct {
	dir string // "" = memory-only

	mu      sync.Mutex
	cap     int
	entries map[Key]*list.Element // of lruEntry
	lru     *list.List            // front = most recent
	flights map[Key]*flight

	hits        atomic.Uint64
	misses      atomic.Uint64
	sfWaits     atomic.Uint64
	diskReads   atomic.Uint64
	diskWrites  atomic.Uint64
	diskCorrupt atomic.Uint64
}

type lruEntry struct {
	key Key
	val []byte
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  []byte
	src  Source
	err  error
}

// New opens a cache with the given options, creating the disk directory if
// configured.
func New(o Options) (*Cache, error) {
	if o.MemEntries <= 0 {
		o.MemEntries = 512
	}
	if o.Dir != "" {
		if err := os.MkdirAll(o.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("rcache: %w", err)
		}
		sweepTemps(o.Dir)
	}
	return &Cache{
		dir:     o.Dir,
		cap:     o.MemEntries,
		entries: make(map[Key]*list.Element),
		lru:     list.New(),
		flights: make(map[Key]*flight),
	}, nil
}

// NewMem returns a memory-only cache holding at most entries values.
func NewMem(entries int) *Cache {
	c, _ := New(Options{MemEntries: entries})
	return c
}

// Do returns the cached value for key, computing and caching it on a miss.
// Concurrent callers with the same key share one computation (the Source
// for waiters mirrors the winner's). A computation error is returned but
// not cached: the flight is dropped so a later caller retries.
func (c *Cache) Do(ctx context.Context, key Key, compute func(context.Context) ([]byte, error)) ([]byte, Source, error) {
	for {
		c.mu.Lock()
		if val, ok := c.memGetLocked(key); ok {
			c.mu.Unlock()
			c.hits.Add(1)
			return val, SourceMem, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			c.sfWaits.Add(1)
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, SourceMiss, ctx.Err()
			}
			if f.err == nil {
				c.hits.Add(1)
				return f.val, f.src, nil
			}
			// The winner failed; loop and retry (possibly becoming the
			// next winner ourselves).
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		f.val, f.src, f.err = c.fill(ctx, key, compute)
		c.mu.Lock()
		// Reset may have swapped the flights map; only remove our own.
		if cur, ok := c.flights[key]; ok && cur == f {
			delete(c.flights, key)
		}
		if f.err == nil {
			c.memPutLocked(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
		return f.val, f.src, f.err
	}
}

// fill resolves a miss: disk first, then compute (persisting the result).
func (c *Cache) fill(ctx context.Context, key Key, compute func(context.Context) ([]byte, error)) ([]byte, Source, error) {
	if val, ok := c.diskGet(key); ok {
		c.hits.Add(1)
		c.diskReads.Add(1)
		return val, SourceDisk, nil
	}
	val, err := compute(ctx)
	if err != nil {
		return nil, SourceMiss, err
	}
	c.misses.Add(1)
	c.diskPut(key, val)
	return val, SourceMiss, nil
}

// Get returns the cached value for key without computing, checking memory
// then disk (a disk hit is promoted to memory). The counters treat it like
// a read: hit on success, nothing on absence.
func (c *Cache) Get(key Key) ([]byte, Source, bool) {
	c.mu.Lock()
	if val, ok := c.memGetLocked(key); ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return val, SourceMem, true
	}
	c.mu.Unlock()
	if val, ok := c.diskGet(key); ok {
		c.hits.Add(1)
		c.diskReads.Add(1)
		c.mu.Lock()
		c.memPutLocked(key, val)
		c.mu.Unlock()
		return val, SourceDisk, true
	}
	return nil, SourceMiss, false
}

// Put stores val under key in both layers.
func (c *Cache) Put(key Key, val []byte) {
	c.mu.Lock()
	c.memPutLocked(key, val)
	c.mu.Unlock()
	c.diskPut(key, val)
}

// Reset drops the in-memory layer and detaches in-flight computations
// (their results are discarded rather than cached). The disk backend is
// untouched: Reset is a test hook for "forget what this process has seen",
// not a cache wipe.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]*list.Element)
	c.lru.Init()
	c.flights = make(map[Key]*flight)
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		SingleFlightWait: c.sfWaits.Load(),
		DiskReads:        c.diskReads.Load(),
		DiskWrites:       c.diskWrites.Load(),
		DiskCorrupt:      c.diskCorrupt.Load(),
	}
}

// Collector exposes the counters as the cache.* metric namespace (see
// docs/METRICS.md).
func (c *Cache) Collector() obs.Collector {
	return obs.CollectorFunc(func(s obs.Sink) {
		st := c.Stats()
		s.Counter("cache.hits", st.Hits)
		s.Counter("cache.misses", st.Misses)
		s.Counter("cache.singleflight.waits", st.SingleFlightWait)
		s.Counter("cache.disk.reads", st.DiskReads)
		s.Counter("cache.disk.writes", st.DiskWrites)
		s.Counter("cache.disk.corrupt", st.DiskCorrupt)
	})
}

func (c *Cache) memGetLocked(key Key) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *Cache) memPutLocked(key Key, val []byte) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&lruEntry{key: key, val: val})
	for len(c.entries) > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
}

// Disk entry format: magic "FRC1", format version (uint32 LE), payload
// length (uint64 LE), SHA-256 of the payload, payload. Anything that does
// not parse — short file, wrong magic/version, length or checksum
// mismatch — is corrupt: counted, removed, recomputed.
const (
	diskMagic   = "FRC1"
	diskVersion = 1
	headerLen   = 4 + 4 + 8 + sha256.Size
)

// sweepTemps removes tmp-*.rc files left behind by a process that died
// between CreateTemp and the rename in diskPut. They are invisible to
// lookups — an entry only exists once its complete file is renamed into
// place — so the sweep reclaims disk space; correctness never depended
// on it.
func sweepTemps(dir string) {
	matches, err := filepath.Glob(filepath.Join(dir, "tmp-*.rc"))
	if err != nil {
		return
	}
	for _, m := range matches {
		os.Remove(m)
	}
}

func (c *Cache) path(key Key) string {
	return filepath.Join(c.dir, hex.EncodeToString(key[:])+".rc")
}

func (c *Cache) diskGet(key Key) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	path := c.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false // absent (or unreadable: treated as absent)
	}
	payload, ok := decodeEntry(raw)
	if !ok {
		c.diskCorrupt.Add(1)
		os.Remove(path)
		return nil, false
	}
	return payload, true
}

func (c *Cache) diskPut(key Key, val []byte) {
	if c.dir == "" {
		return
	}
	path := c.path(key)
	tmp, err := os.CreateTemp(c.dir, "tmp-*.rc")
	if err != nil {
		return // disk persistence is best-effort; memory still has it
	}
	_, werr := tmp.Write(encodeEntry(val))
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name())
		return
	}
	c.diskWrites.Add(1)
}

func encodeEntry(payload []byte) []byte {
	buf := make([]byte, headerLen+len(payload))
	copy(buf, diskMagic)
	binary.LittleEndian.PutUint32(buf[4:], diskVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[16:], sum[:])
	copy(buf[headerLen:], payload)
	return buf
}

func decodeEntry(raw []byte) ([]byte, bool) {
	if len(raw) < headerLen || string(raw[:4]) != diskMagic {
		return nil, false
	}
	if binary.LittleEndian.Uint32(raw[4:]) != diskVersion {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(raw[8:])
	payload := raw[headerLen:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(raw[16:16+sha256.Size]) {
		return nil, false
	}
	return payload, true
}
