// Package rcache is a content-addressed result store: completed simulation
// results keyed by runspec.Spec.Hash. It generalizes (and replaced) the
// system layer's bespoke baseline LRU.
//
// The cache is layered. A bounded in-memory LRU serves repeats within a
// process; an optional disk backend (Options.Dir) persists entries across
// processes, which is what makes fadebench sweeps resumable and shardable
// and lets fadeserve answer a resubmitted identical run instantly. Disk
// entries are versioned and checksummed, written atomically
// (write-to-temp + rename), and read corruption-tolerantly: a truncated or
// bit-flipped entry is detected, counted in cache.disk.corrupt, removed,
// and recomputed — never a panic or a wrong result.
//
// Do adds single-flight de-duplication: concurrent callers with the same
// key share one computation, and a failed computation is not cached, so a
// later caller retries instead of replaying the error.
//
// The cache exposes its counters through Collector (the cache.* namespace
// in docs/METRICS.md).
package rcache
