// Package metadata implements the monitor's shadow state: a byte of
// *critical* metadata per 32-bit application word (the minimal state FADE
// needs to decide filterability, Section 5.1), a metadata register file
// shadowing the architectural registers, and the application-to-metadata
// address translation that the MD cache's TLB (M-TLB) performs in hardware.
//
// Monitors layer their own non-critical metadata (reference counts, origin
// records, per-thread access-type tables, ...) on top of this package in
// internal/monitor.
package metadata
