package metadata

import "fade/internal/isa"

// Word metadata granularity: one metadata byte shadows one 4-byte
// application word. All evaluated monitors fit their critical state in a
// byte (Section 6: two states for AddrCheck/TaintCheck, three for MemCheck,
// pointerness for MemLeak, thread-status byte for AtomCheck).
const (
	WordBytes = 4
	// PageBytes is the metadata page size used for M-TLB translations.
	// One 4 KB metadata page shadows 16 KB of application address space.
	PageBytes = 4096
	pageShift = 12
)

// MDAddr translates an application byte address to its metadata byte
// address: one metadata byte per application word.
func MDAddr(appAddr uint32) uint32 { return appAddr >> 2 }

// MDPage returns the metadata page number holding the metadata for appAddr.
func MDPage(appAddr uint32) uint32 { return MDAddr(appAddr) >> pageShift }

// MTLBSlabShift sizes the application region covered by one M-TLB entry.
// The monitor allocates shadow memory in large aligned slabs, so a single
// translation covers a 128 KB application region (32 KB of metadata).
const MTLBSlabShift = 17

// MTLBSlab returns the M-TLB tag for appAddr.
func MTLBSlab(appAddr uint32) uint32 { return appAddr >> MTLBSlabShift }

// AppPageOfMD returns the first application address shadowed by the given
// metadata page (the inverse mapping, used by tests).
func AppPageOfMD(mdPage uint32) uint32 { return mdPage << (pageShift + 2) }

// Memory is the sparse metadata memory space, keyed by metadata address.
// Pages are allocated on first touch and zero-filled; the zero metadata
// value must therefore be each monitor's "default" state (e.g. unallocated,
// untainted, non-pointer), which all evaluated monitors satisfy.
type Memory struct {
	pages map[uint32]*[PageBytes]byte
	// writes counts metadata mutations, used by differential tests.
	writes uint64
}

// NewMemory returns an empty metadata memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[PageBytes]byte)}
}

// Load returns the metadata byte shadowing the application word at appAddr.
func (m *Memory) Load(appAddr uint32) byte {
	md := MDAddr(appAddr)
	page, ok := m.pages[md>>pageShift]
	if !ok {
		return 0
	}
	return page[md&(PageBytes-1)]
}

// Store sets the metadata byte shadowing the application word at appAddr.
func (m *Memory) Store(appAddr uint32, v byte) {
	md := MDAddr(appAddr)
	pn := md >> pageShift
	page, ok := m.pages[pn]
	if !ok {
		if v == 0 {
			return // zero store to an untouched page is a no-op
		}
		page = new([PageBytes]byte)
		m.pages[pn] = page
	}
	page[md&(PageBytes-1)] = v
	m.writes++
}

// SetRange sets the metadata bytes shadowing the application byte range
// [base, base+size) to v — the bulk operation performed by the Stack-Update
// Unit for frame allocation/deallocation and by malloc/free handlers.
func (m *Memory) SetRange(base, size uint32, v byte) {
	if size == 0 {
		return
	}
	first := MDAddr(base)
	last := MDAddr(base + size - 1)
	for md := first; ; md++ {
		pn := md >> pageShift
		page, ok := m.pages[pn]
		if !ok {
			if v == 0 {
				if md == last {
					break
				}
				// Skip to the end of this untouched page.
				next := (pn + 1) << pageShift
				if next > last {
					break
				}
				md = next - 1
				continue
			}
			page = new([PageBytes]byte)
			m.pages[pn] = page
		}
		page[md&(PageBytes-1)] = v
		m.writes++
		if md == last {
			break
		}
	}
}

// Writes returns the number of metadata mutations performed.
func (m *Memory) Writes() uint64 { return m.writes }

// Pages returns the number of metadata pages touched.
func (m *Memory) Pages() int { return len(m.pages) }

// Snapshot returns a copy of all non-zero metadata bytes keyed by metadata
// address. It is used by differential tests that compare software-only
// monitoring against FADE-accelerated monitoring.
func (m *Memory) Snapshot() map[uint32]byte {
	out := make(map[uint32]byte)
	for pn, page := range m.pages {
		for i, v := range page {
			if v != 0 {
				out[pn<<pageShift|uint32(i)] = v
			}
		}
	}
	return out
}

// Registers is the metadata register file (MD RF) shadowing the
// architectural integer registers.
type Registers struct {
	md [isa.NumRegs]byte
}

// Load returns the metadata of register r; absent operands (RegNone) read
// as zero, the default metadata state.
func (r *Registers) Load(reg isa.Reg) byte {
	if reg >= isa.NumRegs {
		return 0
	}
	return r.md[reg]
}

// Store sets the metadata of register r. Stores to RegNone are ignored.
func (r *Registers) Store(reg isa.Reg, v byte) {
	if reg >= isa.NumRegs {
		return
	}
	r.md[reg] = v
}

// Snapshot returns a copy of the register metadata.
func (r *Registers) Snapshot() [isa.NumRegs]byte { return r.md }

// State bundles the two metadata spaces a monitor operates on.
type State struct {
	Mem  *Memory
	Regs *Registers
}

// NewState returns empty metadata state.
func NewState() *State {
	return &State{Mem: NewMemory(), Regs: &Registers{}}
}
