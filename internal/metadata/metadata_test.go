package metadata

import (
	"testing"
	"testing/quick"

	"fade/internal/isa"
)

func TestMDAddrTranslation(t *testing.T) {
	cases := []struct{ app, md uint32 }{
		{0, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 2}, {0xFFFF_FFFF, 0x3FFF_FFFF},
	}
	for _, c := range cases {
		if got := MDAddr(c.app); got != c.md {
			t.Errorf("MDAddr(%#x) = %#x, want %#x", c.app, got, c.md)
		}
	}
}

func TestMDPageCoversSixteenKB(t *testing.T) {
	if MDPage(0) != MDPage(16*1024-1) {
		t.Fatal("first 16KB spans multiple MD pages")
	}
	if MDPage(0) == MDPage(16*1024) {
		t.Fatal("page boundary not at 16KB")
	}
}

func TestAppPageOfMDInverse(t *testing.T) {
	for _, app := range []uint32{0, 16 << 10, 1 << 20, 0xF000_0000} {
		if got := AppPageOfMD(MDPage(app)); got > app || app-got >= 16<<10 {
			t.Errorf("AppPageOfMD(MDPage(%#x)) = %#x", app, got)
		}
	}
}

func TestMemoryLoadStore(t *testing.T) {
	m := NewMemory()
	if m.Load(0x1000) != 0 {
		t.Fatal("untouched memory not zero")
	}
	m.Store(0x1000, 3)
	if m.Load(0x1000) != 3 {
		t.Fatal("store not visible")
	}
	// Same word, different byte offset: one metadata byte per word.
	if m.Load(0x1002) != 3 {
		t.Fatal("word granularity violated")
	}
	if m.Load(0x1004) == 3 {
		t.Fatal("adjacent word affected")
	}
}

func TestMemoryZeroStoreToUntouchedPageAllocatesNothing(t *testing.T) {
	m := NewMemory()
	m.Store(0x5000, 0)
	if m.Pages() != 0 {
		t.Fatalf("zero store allocated %d pages", m.Pages())
	}
}

func TestSetRange(t *testing.T) {
	m := NewMemory()
	m.SetRange(0x100, 64, 7)
	for a := uint32(0x100); a < 0x140; a += 4 {
		if m.Load(a) != 7 {
			t.Fatalf("addr %#x not set", a)
		}
	}
	if m.Load(0xFC) != 0 || m.Load(0x140) != 0 {
		t.Fatal("SetRange overflowed its bounds")
	}
}

func TestSetRangeZeroLength(t *testing.T) {
	m := NewMemory()
	m.SetRange(0x100, 0, 9)
	if m.Pages() != 0 {
		t.Fatal("zero-length range touched memory")
	}
}

func TestSetRangeZeroValueSkipsUntouchedPages(t *testing.T) {
	m := NewMemory()
	m.SetRange(0, 1<<20, 0) // 1MB of zeros over untouched space
	if m.Pages() != 0 {
		t.Fatalf("zero fill allocated %d pages", m.Pages())
	}
	m.Store(0x800, 5)
	m.SetRange(0, 1<<20, 0)
	if m.Load(0x800) != 0 {
		t.Fatal("zero fill skipped a touched page")
	}
}

func TestSetRangeCrossesPages(t *testing.T) {
	m := NewMemory()
	base := uint32(16<<10) - 64 // straddles an MD page boundary
	m.SetRange(base, 128, 2)
	for a := base; a < base+128; a += 4 {
		if m.Load(a) != 2 {
			t.Fatalf("addr %#x not set across page boundary", a)
		}
	}
}

func TestSetRangeMatchesStores(t *testing.T) {
	err := quick.Check(func(base16 uint16, len8 uint8, v byte) bool {
		base := uint32(base16) * 4
		size := uint32(len8) + 1
		a := NewMemory()
		b := NewMemory()
		a.SetRange(base, size, v)
		for addr := base; addr < base+size; addr += 4 {
			b.Store(addr, v)
		}
		snapA, snapB := a.Snapshot(), b.Snapshot()
		if len(snapA) != len(snapB) {
			return false
		}
		for k, va := range snapA {
			if snapB[k] != va {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSnapshot(t *testing.T) {
	m := NewMemory()
	m.Store(0x10, 1)
	m.Store(0x20, 2)
	m.Store(0x30, 0) // zero values excluded
	snap := m.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot size %d", len(snap))
	}
	if snap[MDAddr(0x10)] != 1 || snap[MDAddr(0x20)] != 2 {
		t.Fatalf("snapshot contents %v", snap)
	}
}

func TestWritesCounter(t *testing.T) {
	m := NewMemory()
	m.Store(0x10, 1)
	m.SetRange(0x20, 16, 2)
	if m.Writes() != 1+4 {
		t.Fatalf("writes = %d", m.Writes())
	}
}

func TestRegisters(t *testing.T) {
	var r Registers
	r.Store(3, 9)
	if r.Load(3) != 9 {
		t.Fatal("register store not visible")
	}
	if r.Load(isa.RegNone) != 0 {
		t.Fatal("RegNone read non-zero")
	}
	r.Store(isa.RegNone, 5) // ignored
	snap := r.Snapshot()
	if snap[3] != 9 {
		t.Fatal("snapshot missing store")
	}
}

func TestMTLBSlabGranularity(t *testing.T) {
	if MTLBSlab(0) != MTLBSlab(1<<MTLBSlabShift-1) {
		t.Fatal("slab split below its size")
	}
	if MTLBSlab(0) == MTLBSlab(1<<MTLBSlabShift) {
		t.Fatal("slab boundary wrong")
	}
}

func TestNewState(t *testing.T) {
	st := NewState()
	if st.Mem == nil || st.Regs == nil {
		t.Fatal("NewState returned nil components")
	}
}
