// Package par provides the bounded worker pool behind the parallel
// experiment runner. Every figure and table of the evaluation is a grid of
// independent, deterministic, seeded simulations (benchmark × configuration
// cells); Pool fans them out across GOMAXPROCS workers and RunCells returns
// their results in input order, so the regenerated tables are byte-identical
// to a sequential run regardless of scheduling.
package par
