package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	var n atomic.Int64
	p := NewPool(4)
	for i := 0; i < 100; i++ {
		p.Go(func() error {
			n.Add(1)
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	p := NewPool(workers)
	for i := 0; i < 50; i++ {
		p.Go(func() error {
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", got, workers)
	}
}

func TestPoolCollectsErrors(t *testing.T) {
	p := NewPool(2)
	for i := 0; i < 5; i++ {
		i := i
		p.Go(func() error {
			if i%2 == 0 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
	}
	err := p.Wait()
	if err == nil {
		t.Fatal("Wait returned nil, want joined errors")
	}
	for _, want := range []string{"task 0", "task 2", "task 4"} {
		if !contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestPoolFailFastSkipsRemaining(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	p := NewPool(1, FailFast())
	p.Go(func() error { return boom })
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
	// Submissions after cancellation are dropped.
	for i := 0; i < 10; i++ {
		p.Go(func() error {
			ran.Add(1)
			return nil
		})
	}
	p.wg.Wait()
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran after fail-fast cancellation", ran.Load())
	}
}

// TestPoolRecoversPanic: a task submitted directly through Go that panics is
// recorded as a *PanicError and the pool still drains (Wait returns).
func TestPoolRecoversPanic(t *testing.T) {
	p := NewPool(2)
	for i := 0; i < 4; i++ {
		p.Go(func() error { panic("kaboom") })
	}
	err := p.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait = %v, want *PanicError", err)
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {%v, %d stack bytes}, want value and stack", pe.Value, len(pe.Stack))
	}
}

func TestPoolDefaultWidth(t *testing.T) {
	p := NewPool(0)
	if got, want := cap(p.sem), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("default width %d, want GOMAXPROCS %d", got, want)
	}
}

func TestRunCellsPreservesOrder(t *testing.T) {
	cells := make([]int, 64)
	for i := range cells {
		cells[i] = i
	}
	// Workers run out of order (staggered sleeps); results must not.
	out, err := RunCells(context.Background(), 8, cells, func(_ context.Context, c int) (int, error) {
		time.Sleep(time.Duration(64-c) * 10 * time.Microsecond)
		return c * c, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunCellsReportsLowestFailingCell(t *testing.T) {
	cells := []int{0, 1, 2, 3, 4, 5, 6, 7}
	_, err := RunCells(context.Background(), 4, cells, func(_ context.Context, c int) (int, error) {
		if c >= 3 {
			return 0, fmt.Errorf("sim %d exploded", c)
		}
		return c, nil
	})
	if err == nil || !contains(err.Error(), "cell 3") {
		t.Fatalf("err = %v, want lowest failing cell 3", err)
	}
}

func TestRunCellsEmpty(t *testing.T) {
	out, err := RunCells(context.Background(), 4, nil, func(_ context.Context, c int) (int, error) { return c, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("RunCells(nil) = %v, %v", out, err)
	}
}

// TestRunCellsRecoversPanics: a panicking cell must surface as an error
// naming the cell — with the panic value and a stack — and every other cell
// must still run to completion; the pool must not deadlock or crash.
func TestRunCellsRecoversPanics(t *testing.T) {
	var ran atomic.Int64
	cells := []int{0, 1, 2, 3, 4, 5, 6, 7}
	_, err := RunCells(context.Background(), 4, cells, func(_ context.Context, c int) (int, error) {
		ran.Add(1)
		if c == 2 {
			panic("simulated corruption")
		}
		return c, nil
	})
	if err == nil {
		t.Fatal("panicking cell returned nil error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want wrapped *PanicError", err)
	}
	if pe.Value != "simulated corruption" {
		t.Fatalf("panic value = %v, want simulated corruption", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error carries no stack")
	}
	if !strings.Contains(err.Error(), "cell 2") {
		t.Fatalf("err %q does not identify cell 2", err)
	}
	if ran.Load() != int64(len(cells)) {
		t.Fatalf("ran %d cells, want all %d despite the panic", ran.Load(), len(cells))
	}
}

// TestRunCellsHonorsCancellation: once the context is canceled, unstarted
// cells are skipped and RunCells returns the cancellation error instead of
// hanging on the remaining work.
func TestRunCellsHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	cells := make([]int, 100)
	for i := range cells {
		cells[i] = i
	}
	_, err := RunCells(ctx, 1, cells, func(ctx context.Context, c int) (int, error) {
		if c == 3 {
			cancel()
		}
		ran.Add(1)
		return c, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Width 1 runs sequentially: cells after the cancel point are skipped.
	if got := ran.Load(); got >= int64(len(cells)) {
		t.Fatalf("all %d cells ran despite cancellation", got)
	}
}

func TestRunCellsSequentialWidthOne(t *testing.T) {
	var mu sync.Mutex
	var order []int
	cells := []int{0, 1, 2, 3, 4}
	_, err := RunCells(context.Background(), 1, cells, func(_ context.Context, c int) (int, error) {
		mu.Lock()
		order = append(order, c)
		mu.Unlock()
		return c, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("width-1 execution order %v not sequential", order)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestPoolIntrospection(t *testing.T) {
	p := NewPool(2)
	if p.Width() != 2 {
		t.Fatalf("Width = %d, want 2", p.Width())
	}
	if p.InFlight() != 0 {
		t.Fatalf("idle InFlight = %d, want 0", p.InFlight())
	}
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	task := func() error { started <- struct{}{}; <-block; return nil }
	if !p.TryGo(task) || !p.TryGo(task) {
		t.Fatal("TryGo rejected with free slots")
	}
	<-started
	<-started
	if p.InFlight() != 2 {
		t.Fatalf("busy InFlight = %d, want 2", p.InFlight())
	}
	if p.TryGo(func() error { return nil }) {
		t.Fatal("TryGo accepted with all slots busy")
	}
	close(block)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.InFlight() != 0 {
		t.Fatalf("drained InFlight = %d, want 0", p.InFlight())
	}
	// After a drain the pool remains usable through both submit paths.
	if !p.TryGo(func() error { return nil }) {
		t.Fatal("TryGo rejected after drain")
	}
	p.Go(func() error { return nil })
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestTryGoAfterFailFastStop(t *testing.T) {
	p := NewPool(1, FailFast())
	p.Go(func() error { return errors.New("boom") })
	_ = p.Wait()
	if p.TryGo(func() error { return nil }) {
		t.Fatal("TryGo accepted after fail-fast cancellation")
	}
}
