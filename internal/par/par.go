package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"fade/internal/spans"
)

// Pool is a bounded worker pool. Submit work with Go; Wait blocks until all
// submitted work has finished and returns the collected errors.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup

	mu   sync.Mutex
	errs []error

	failFast bool
	stop     chan struct{}
	stopOnce sync.Once
}

// PanicError is the error a Pool records when a submitted task panics: the
// worker recovers the panic, captures its value and stack, and surfaces it
// through Wait like any other task failure. One panicking cell therefore
// fails its experiment instead of killing the whole process, and the pool
// drains normally — no semaphore slot or WaitGroup count is leaked.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: task panicked: %v\n%s", e.Value, e.Stack)
}

// Option configures a Pool.
type Option func(*Pool)

// FailFast makes the pool skip tasks submitted (or not yet started) after
// the first error. Already-running tasks are not interrupted.
func FailFast() Option { return func(p *Pool) { p.failFast = true } }

// NewPool returns a pool running at most workers tasks concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0).
func NewPool(workers int, opts ...Option) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		sem:  make(chan struct{}, workers),
		stop: make(chan struct{}),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Go submits fn to the pool. It blocks only while all workers are busy
// (bounding both concurrency and the goroutine count); the task itself runs
// asynchronously. A panicking task is recovered and recorded as a
// *PanicError rather than crashing the process. A nil-safe no-op after
// cancellation in fail-fast mode.
func (p *Pool) Go(fn func() error) {
	select {
	case <-p.stop:
		return
	case p.sem <- struct{}{}:
	}
	p.launch(fn)
}

// TryGo submits fn only if a worker slot is immediately free, never
// blocking the caller; it reports whether the task was accepted. Together
// with Width and InFlight it lets a long-running scheduler (the fadeserve
// admission path) dispatch onto the pool without stalling and surface the
// pool's occupancy as backpressure instead.
func (p *Pool) TryGo(fn func() error) bool {
	select {
	case <-p.stop:
		return false
	default:
	}
	select {
	case p.sem <- struct{}{}:
	default:
		return false
	}
	p.launch(fn)
	return true
}

// Width returns the pool's worker-slot count.
func (p *Pool) Width() int { return cap(p.sem) }

// InFlight returns the number of tasks currently holding a worker slot —
// the pool's instantaneous occupancy, suitable for a gauge. It is a
// point-in-time read: concurrent submissions and completions move it.
func (p *Pool) InFlight() int { return len(p.sem) }

// launch runs fn on a new goroutine; the caller has already acquired a
// semaphore slot.
func (p *Pool) launch(fn func() error) {
	p.wg.Add(1)
	go func() {
		defer func() {
			<-p.sem
			p.wg.Done()
		}()
		if p.failFast {
			select {
			case <-p.stop:
				return
			default:
			}
		}
		if err := p.run(fn); err != nil {
			p.mu.Lock()
			p.errs = append(p.errs, err)
			p.mu.Unlock()
			if p.failFast {
				p.stopOnce.Do(func() { close(p.stop) })
			}
		}
	}()
}

// run executes fn, converting a panic into a *PanicError. The recover sits
// in its own frame so the deferred semaphore/WaitGroup release in Go always
// runs — a panicking task cannot deadlock Wait.
func (p *Pool) run(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 64<<10)
			err = &PanicError{Value: r, Stack: buf[:runtime.Stack(buf, false)]}
		}
	}()
	return fn()
}

// Wait blocks until every submitted task has completed and returns the
// collected errors joined (nil when all tasks succeeded). The pool may be
// reused after Wait unless it was cancelled by fail-fast.
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return errors.Join(p.errs...)
}

// RunCells runs fn over every cell on a pool of the given width (<= 0
// selects GOMAXPROCS) and returns the results in input order, regardless of
// completion order. Each invocation receives ctx; once ctx is done,
// not-yet-started cells are skipped with ctx's error rather than launched,
// so cancellation drains the pool quickly without abandoning running cells.
//
// On failure RunCells returns the error of the lowest-indexed failing cell —
// wrapped with the cell's index — so error reporting is as deterministic as
// the results. A panicking cell is recovered by the pool and reported the
// same way (as a *PanicError carrying the cell identity), never crashing the
// process or deadlocking the drain.
func RunCells[C, R any](ctx context.Context, workers int, cells []C, fn func(context.Context, C) (R, error)) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]R, len(cells))
	errs := make([]error, len(cells))
	// When the context carries a span trace, every cell contributes one
	// wall-domain par.cell span, making pool occupancy visible in the
	// exported trace. tr == nil (the common case) costs one context lookup.
	tr := spans.FromContext(ctx)
	p := NewPool(workers)
	for i := range cells {
		i := i
		p.Go(func() (err error) {
			// Recover here, not just in the pool, so the error names the
			// failing cell; the pool's own recover remains the backstop for
			// tasks submitted directly through Go.
			defer func() {
				if r := recover(); r != nil {
					buf := make([]byte, 64<<10)
					pe := &PanicError{Value: r, Stack: buf[:runtime.Stack(buf, false)]}
					errs[i] = fmt.Errorf("cell %d: %w", i, pe)
					err = errs[i]
				}
			}()
			if err := ctx.Err(); err != nil {
				errs[i] = fmt.Errorf("cell %d: %w", i, err)
				return errs[i]
			}
			if tr != nil {
				start := time.Now()
				defer func() {
					tr.Wall(spans.NameParCell, start, time.Now(),
						spans.Num("cell", uint64(i)), spans.None)
				}()
			}
			r, err := fn(ctx, cells[i])
			if err != nil {
				errs[i] = fmt.Errorf("cell %d: %w", i, err)
				return errs[i]
			}
			results[i] = r
			return nil
		})
	}
	p.wg.Wait() // errors are surfaced per-cell below, in input order
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
