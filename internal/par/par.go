package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Pool is a bounded worker pool. Submit work with Go; Wait blocks until all
// submitted work has finished and returns the collected errors.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup

	mu   sync.Mutex
	errs []error

	failFast bool
	stop     chan struct{}
	stopOnce sync.Once
}

// Option configures a Pool.
type Option func(*Pool)

// FailFast makes the pool skip tasks submitted (or not yet started) after
// the first error. Already-running tasks are not interrupted.
func FailFast() Option { return func(p *Pool) { p.failFast = true } }

// NewPool returns a pool running at most workers tasks concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0).
func NewPool(workers int, opts ...Option) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		sem:  make(chan struct{}, workers),
		stop: make(chan struct{}),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Go submits fn to the pool. It blocks only while all workers are busy
// (bounding both concurrency and the goroutine count); the task itself runs
// asynchronously. A nil-safe no-op after cancellation in fail-fast mode.
func (p *Pool) Go(fn func() error) {
	select {
	case <-p.stop:
		return
	case p.sem <- struct{}{}:
	}
	p.wg.Add(1)
	go func() {
		defer func() {
			<-p.sem
			p.wg.Done()
		}()
		if p.failFast {
			select {
			case <-p.stop:
				return
			default:
			}
		}
		if err := fn(); err != nil {
			p.mu.Lock()
			p.errs = append(p.errs, err)
			p.mu.Unlock()
			if p.failFast {
				p.stopOnce.Do(func() { close(p.stop) })
			}
		}
	}()
}

// Wait blocks until every submitted task has completed and returns the
// collected errors joined (nil when all tasks succeeded). The pool may be
// reused after Wait unless it was cancelled by fail-fast.
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return errors.Join(p.errs...)
}

// RunCells runs fn over every cell on a pool of the given width (<= 0
// selects GOMAXPROCS) and returns the results in input order, regardless of
// completion order. On failure it returns the error of the lowest-indexed
// failing cell, so error reporting is as deterministic as the results.
func RunCells[C, R any](workers int, cells []C, fn func(C) (R, error)) ([]R, error) {
	results := make([]R, len(cells))
	errs := make([]error, len(cells))
	p := NewPool(workers)
	for i := range cells {
		i := i
		p.Go(func() error {
			r, err := fn(cells[i])
			if err != nil {
				errs[i] = fmt.Errorf("cell %d: %w", i, err)
				return errs[i]
			}
			results[i] = r
			return nil
		})
	}
	p.wg.Wait() // errors are surfaced per-cell below, in input order
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
