package fade

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicRun(t *testing.T) {
	cfg := DefaultConfig("MemLeak")
	cfg.Instrs = 40_000
	res, err := Run("astar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown < 1 || res.Filter == nil {
		t.Fatalf("result = %+v", res)
	}
	if res.Filter.FilterRatio() <= 0 {
		t.Fatal("nothing filtered")
	}
}

func TestPublicQueueStudy(t *testing.T) {
	qs, err := RunQueueStudy("astar", "AddrCheck", OoO4, UnboundedQueue, 1, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if qs.MonitoredIPC <= 0 {
		t.Fatal("no monitored load measured")
	}
}

func TestPublicRegistries(t *testing.T) {
	if len(MonitorNames()) != 5 {
		t.Fatalf("monitors = %v", MonitorNames())
	}
	if len(Benchmarks()) != 8 || len(ParallelBenchmarks()) != 5 || len(TaintBenchmarks()) != 4 {
		t.Fatal("benchmark registries wrong")
	}
	if _, ok := LookupProfile("astar"); !ok {
		t.Fatal("astar profile missing")
	}
	if _, ok := LookupProfile("nope"); ok {
		t.Fatal("bogus profile found")
	}
	for _, name := range MonitorNames() {
		if _, err := NewMonitor(name, 4); err != nil {
			t.Fatalf("NewMonitor(%s): %v", name, err)
		}
	}
}

// TestAcceleratorLevelAPI drives the filtering unit directly through the
// public API, the path a downstream user building a custom monitor takes.
func TestAcceleratorLevelAPI(t *testing.T) {
	md := NewMetadataState()
	fu, evq, ufq := NewFilteringUnit(false, md)

	// Program a MemLeak-style clean check: filter loads whose source word
	// and destination register are both non-pointers.
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, Entry{
		S1: OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		D:  OperandRule{Valid: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		CC: true, HandlerPC: 0x4000,
	})

	// A clean event filters; a pointer-touching event reaches software.
	md.Mem.Store(0x2000, 1)
	evq.Push(Event{ID: 1, Addr: 0x1000, Dest: 3, Src1: 0xFF, Src2: 0xFF, Seq: 0})
	evq.Push(Event{ID: 1, Addr: 0x2000, Dest: 3, Src1: 0xFF, Src2: 0xFF, Seq: 1})
	for i := 0; i < 60; i++ {
		fu.Tick(uint64(i))
	}
	if fu.Stats().Filtered() != 1 {
		t.Fatalf("filtered = %d", fu.Stats().Filtered())
	}
	u, ok := ufq.Pop()
	if !ok || u.Ev.Seq != 1 {
		t.Fatalf("unfiltered = %+v, %v", u, ok)
	}
	fu.Complete(1)
}

func TestPublicExperiment(t *testing.T) {
	tbl, err := RunExperiment("synth", ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "FADE total") {
		t.Fatal("synth table incomplete")
	}
	if len(ExperimentIDs()) != 21 {
		t.Fatalf("experiment ids = %v", ExperimentIDs())
	}
	if _, err := RunExperiment("nope", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestSynthReport(t *testing.T) {
	if !strings.Contains(SynthReport(), "grand total") {
		t.Fatal("synth report incomplete")
	}
}

func TestInjectionThroughPublicAPI(t *testing.T) {
	cfg := DefaultConfig("TaintCheck")
	cfg.Instrs = 80_000
	cfg.Inject = &Inject{TaintedJump: true}
	res, err := Run("bzip", cfg)
	if err != nil {
		t.Fatal(err)
	}
	alerts := 0
	for _, r := range res.Reports {
		if r.Kind == "tainted-jump" {
			alerts++
		}
	}
	if alerts == 0 {
		t.Fatal("injected exploit not detected through public API")
	}
}

func TestTraceRecordReplayPublicAPI(t *testing.T) {
	var buf bytes.Buffer
	n, err := RecordTrace(&buf, "mcf", 5, 10_000)
	if err != nil || n != 10_000 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	rd, err := OpenTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Profile() != "mcf" {
		t.Fatalf("profile = %q", rd.Profile())
	}
	count := 0
	for {
		if _, ok := rd.Next(); !ok {
			break
		}
		count++
	}
	if count != 10_000 || rd.Err() != nil {
		t.Fatalf("replayed %d records, err=%v", count, rd.Err())
	}
	if _, err := RecordTrace(&buf, "nope", 1, 10); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// nopMonitor is a minimal user-defined monitor: it watches nothing and
// filters everything, proving the custom-monitor plumbing end to end.
type nopMonitor struct{ events uint64 }

func (m *nopMonitor) Name() string      { return "Nop" }
func (m *nopMonitor) Kind() MonitorKind { return MemoryTracking }
func (m *nopMonitor) TracksStack() bool { return false }
func (m *nopMonitor) Monitored(in Instr) bool {
	return in.Op == OpLoad && !in.Stack
}
func (m *nopMonitor) EventOf(in Instr, seq uint64) Event {
	m.events++
	return Event{ID: 1, Kind: EvInstr, Op: in.Op, Addr: in.Addr, Dest: in.Dest, Seq: seq}
}
func (m *nopMonitor) Init(st *MetadataState) {}
func (m *nopMonitor) Program(p Programmer) error {
	if err := p.SetInvariant(0, 0); err != nil {
		return err
	}
	return p.SetEntry(1, Entry{
		S1: OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		CC: true,
	})
}
func (m *nopMonitor) Handle(ev Event, st *MetadataState, hc HandleCtx) HandleResult {
	return HandleResult{Cost: 2, Class: ClassCC}
}
func (m *nopMonitor) Finalize(st *MetadataState) []Report { return nil }

func TestRunWithCustomMonitor(t *testing.T) {
	mon := &nopMonitor{}
	cfg := DefaultConfig("")
	cfg.Instrs = 40_000
	res, err := RunWithMonitor("hmmer", cfg, mon)
	if err != nil {
		t.Fatal(err)
	}
	if mon.events == 0 {
		t.Fatal("custom monitor saw no events")
	}
	if res.Filter.FilterRatio() < 0.99 {
		t.Fatalf("everything-clean monitor filtered only %.3f", res.Filter.FilterRatio())
	}
	if res.Slowdown > 1.6 {
		t.Fatalf("filter-everything monitor slowed the app %.2fx", res.Slowdown)
	}
}
