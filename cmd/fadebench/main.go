// Command fadebench regenerates the paper's tables and figures. Each
// experiment prints rows mirroring the series the paper plots; the output
// of a full run is the data recorded in EXPERIMENTS.md.
//
// Usage:
//
//	fadebench -exp all
//	fadebench -exp fig9 -instrs 500000
//	fadebench -exp all -parallel 8 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fade"
)

// report is the JSON shape emitted per experiment under -json: the table
// plus its wall-clock. Streaming one object per line (rather than one big
// array) lets long runs be consumed incrementally.
type report struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	Elapsed string     `json:"elapsed"`
	Error   string     `json:"error,omitempty"`
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all' (ids: "+strings.Join(fade.ExperimentIDs(), " ")+")")
		instrs   = flag.Uint64("instrs", 300_000, "application instructions per simulation")
		seed     = flag.Uint64("seed", 1, "random seed")
		parallel = flag.Int("parallel", 0, "simulation cells to run concurrently (0 = GOMAXPROCS, 1 = sequential)")
		asJSON   = flag.Bool("json", false, "emit one JSON object per experiment instead of text tables")
	)
	flag.Parse()

	o := fade.ExperimentOptions{Instrs: *instrs, Seed: *seed, Parallel: *parallel}

	ids := []string{*exp}
	if *exp == "all" {
		ids = fade.ExperimentIDs()
	}

	enc := json.NewEncoder(os.Stdout)
	start := time.Now()
	failed := false
	for _, id := range ids {
		expStart := time.Now()
		t, err := fade.RunExperiment(id, o)
		elapsed := time.Since(expStart).Round(time.Millisecond)
		if err != nil {
			failed = true
			if *asJSON {
				enc.Encode(report{ID: id, Elapsed: elapsed.String(), Error: err.Error()})
			} else {
				fmt.Fprintf(os.Stderr, "fadebench: %s: %v\n", id, err)
			}
			continue
		}
		if *asJSON {
			enc.Encode(report{
				ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows,
				Notes: t.Notes, Elapsed: elapsed.String(),
			})
		} else {
			fmt.Println(t.String())
			fmt.Printf("[%s: %s]\n\n", id, elapsed)
		}
	}
	if !*asJSON {
		fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
