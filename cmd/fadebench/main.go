// Command fadebench regenerates the paper's tables and figures. Each
// experiment prints rows mirroring the series the paper plots; the output
// of a full run is the data recorded in EXPERIMENTS.md.
//
// Usage:
//
//	fadebench -exp all
//	fadebench -exp fig9 -instrs 500000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fade"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id or 'all' (ids: "+strings.Join(fade.ExperimentIDs(), " ")+")")
		instrs = flag.Uint64("instrs", 300_000, "application instructions per simulation")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	o := fade.ExperimentOptions{Instrs: *instrs, Seed: *seed}
	start := time.Now()
	if *exp == "all" {
		tables, err := fade.RunAllExperiments(o)
		for _, t := range tables {
			fmt.Println(t.String())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fadebench: %v\n", err)
			os.Exit(1)
		}
	} else {
		t, err := fade.RunExperiment(*exp, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fadebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.String())
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}
