// Command fadebench regenerates the paper's tables and figures. Each
// experiment prints rows mirroring the series the paper plots; the output
// of a full run is the data recorded in EXPERIMENTS.md.
//
// Beyond the tables, every simulation cell carries its full metrics
// snapshot (see docs/METRICS.md): -json embeds the snapshots in each
// report, -metrics writes one Prometheus text exposition covering every
// cell, and -timeline writes a cycle-sampled JSONL telemetry stream.
//
// With -cache-dir every simulated cell is stored in a content-addressed
// result cache keyed by its canonical run spec, making sweeps resumable:
// an interrupted run rerun with the same flags replays completed cells
// from disk and simulates only the remainder, producing byte-identical
// tables. -shard i/n primes the cache with one hash-partitioned shard of
// the cells (no tables), so n machines sharing a cache directory can
// split a sweep.
//
// With -coordinator ADDR the sweep runs distributed: fadebench listens on
// ADDR as a fabric coordinator (see docs/SERVING.md), fadeworker
// processes lease cells over HTTP, and cells no worker finishes — worker
// crashes, partitions, exhausted retries, or no workers at all — are
// executed locally, so the sweep always completes and the assembled
// tables are byte-identical to a local run.
//
// Usage:
//
//	fadebench -exp all
//	fadebench -exp fig9 -instrs 500000
//	fadebench -exp all -parallel 8 -json > tables.jsonl
//	fadebench -exp fig4b -metrics out.prom -timeline out.jsonl
//	fadebench -exp all -cache-dir /var/tmp/fade-cache
//	fadebench -exp all -cache-dir shared/ -shard 0/4
//	fadebench -exp all -cache-dir shared/ -coordinator :9090
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fade"
	"fade/internal/experiments"
	"fade/internal/fabric"
	"fade/internal/spans"
)

// report is the JSON shape emitted per experiment under -json: the table
// plus its wall-clock and per-cell metrics. Streaming one object per line
// (rather than one big array) lets long runs be consumed incrementally.
type report struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Header  []string           `json:"header"`
	Rows    [][]string         `json:"rows"`
	Notes   []string           `json:"notes,omitempty"`
	Elapsed string             `json:"elapsed"`
	Cells   []fade.CellMetrics `json:"cells,omitempty"`
	Error   string             `json:"error,omitempty"`
}

func main() {
	os.Exit(run())
}

// run holds the whole program so deferred profile/file closers execute
// before the process exits (os.Exit in main would skip them).
func run() int {
	var (
		exp       = flag.String("exp", "all", "experiment id or 'all' (ids: "+strings.Join(fade.ExperimentIDs(), " ")+")")
		instrs    = flag.Uint64("instrs", 300_000, "application instructions per simulation")
		seed      = flag.Uint64("seed", 1, "random seed")
		parallel  = flag.Int("parallel", 0, "simulation cells to run concurrently (0 = GOMAXPROCS, 1 = sequential)")
		appCores  = flag.Int("app-cores", 0, "CMP: run every cell with N application cores (0 = experiment default)")
		monCores  = flag.Int("mon-cores", 0, "CMP: dedicated monitor cores (default: one per application core)")
		check     = flag.Bool("check", false, "arm the per-cycle invariant checker in every cell; a violation fails the experiment with the invariant named")
		ff        = flag.Bool("fast-forward", true, "skip ahead through quiescent cycle spans in every cell (results are byte-identical; -check forces cycle-exact execution)")
		asJSON    = flag.Bool("json", false, "emit one JSON object per experiment on stdout (progress goes to stderr)")
		metricsAt = flag.String("metrics", "", "write every cell's metrics as one Prometheus text exposition to this file")
		tlAt      = flag.String("timeline", "", "write cycle-sampled JSONL telemetry for every cell to this file")
		tlEvery   = flag.Uint64("timeline-every", 0, "cycles between timeline samples (default 1000 when -timeline is set)")
		traceAt   = flag.String("trace", "", "write a wall-clock sweep trace (cli.run, bench.experiment, par.cell spans) as Chrome trace-event JSON to this file")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		cacheDir  = flag.String("cache-dir", "", "content-addressed result cache directory; reruns replay completed cells instead of simulating")
		cacheMem  = flag.Int("cache-mem", 0, "in-memory result cache entries (0 = default; effective with -cache-dir)")
		shardSpec = flag.String("shard", "", "prime shard i of n (format i/n) of every experiment's cells into -cache-dir, building no tables")

		coordAddr    = flag.String("coordinator", "", "run the sweep distributed: listen on ADDR as a fabric coordinator for fadeworker processes, executing unclaimed cells locally")
		leaseTTL     = flag.Duration("lease-ttl", 30*time.Second, "fabric lease time-to-live; heartbeats renew it (with -coordinator)")
		leaseRetries = flag.Int("lease-retries", 3, "re-queue cap per cell before the coordinator executes it locally (with -coordinator)")
		workerGrace  = flag.Duration("worker-grace", 10*time.Second, "idle period with no worker activity before the coordinator claims the whole backlog locally (with -coordinator)")
	)
	flag.Parse()

	var cache *fade.ResultCache
	if *cacheDir != "" {
		c, err := fade.OpenResultCache(*cacheDir, *cacheMem)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fadebench: -cache-dir: %v\n", err)
			return 1
		}
		cache = c
	}
	if *coordAddr != "" {
		if *shardSpec != "" {
			fmt.Fprintln(os.Stderr, "fadebench: -coordinator and -shard are mutually exclusive (the fabric already partitions the sweep)")
			return 1
		}
		if cache == nil {
			// Results must land somewhere the assembly pass can read; an
			// in-memory cache serves when no -cache-dir is shared.
			c, err := fade.OpenResultCache("", *cacheMem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fadebench: -coordinator: %v\n", err)
				return 1
			}
			cache = c
		}
	}
	shard, shardCount := 0, 0
	if *shardSpec != "" {
		var err error
		shard, shardCount, err = parseShard(*shardSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fadebench: -shard: %v\n", err)
			return 1
		}
		if cache == nil {
			fmt.Fprintln(os.Stderr, "fadebench: -shard requires -cache-dir (the primed results must land somewhere shared)")
			return 1
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fadebench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fadebench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fadebench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "fadebench: -memprofile: %v\n", err)
			}
		}()
	}

	if *tlAt != "" && *tlEvery == 0 {
		*tlEvery = 1000
	}
	// SIGINT/SIGTERM cancel every in-flight simulation cell at its next
	// scheduler checkpoint; completed experiments' metrics are still flushed
	// below and the process exits non-zero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// The sweep trace is wall-domain: one cli.run span, one bench.experiment
	// span per experiment, one par.cell span per simulation cell (emitted by
	// the worker pool; the experiments layer strips the trace before each
	// cell's simulator so cycle spans never flood the shared ring).
	var tr *spans.Trace
	if *traceAt != "" {
		tr = spans.New("fadebench-"+*exp, 1<<16)
		ctx = spans.NewContext(ctx, tr)
	}

	o := fade.ExperimentOptions{
		Instrs: *instrs, Seed: *seed, Parallel: *parallel, TimelineEvery: *tlEvery,
		AppCores: *appCores, MonCores: *monCores,
		Ctx: ctx, CheckInvariants: *check, FastForward: *ff,
		Cache: cache,
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = fade.ExperimentIDs()
	}

	if shardCount > 0 {
		return prime(ctx, ids, o, shard, shardCount, cache)
	}

	var tlFile *os.File
	if *tlAt != "" {
		f, err := os.Create(*tlAt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fadebench: -timeline: %v\n", err)
			return 1
		}
		tlFile = f
		defer tlFile.Close()
	}

	// Human-readable progress goes to stderr so that stdout stays clean
	// JSONL under -json (and clean tables otherwise).
	enc := json.NewEncoder(os.Stdout)
	var labeled []fade.LabeledSnapshot
	start := time.Now()
	failed := false
	canceled := false
	if *coordAddr != "" {
		// The distributed phase fills the cache; the assembly loop below
		// then runs unchanged as a pure cache read. A fabric error is
		// reported but not fatal here: assembly retries whatever is still
		// missing locally and flags any cell that truly cannot run.
		if err := distribute(ctx, *coordAddr, ids, o, *leaseTTL, *leaseRetries, *workerGrace); err != nil {
			fmt.Fprintf(os.Stderr, "fadebench: fabric: %v\n", err)
			if ctx.Err() != nil {
				logCacheStats(cache)
				return 2
			}
			failed = true
		}
	}
	for _, id := range ids {
		fmt.Fprintf(os.Stderr, "fadebench: running %s...\n", id)
		expStart := time.Now()
		t, err := fade.RunExperiment(id, o)
		elapsed := time.Since(expStart).Round(time.Millisecond)
		tr.Wall(spans.NameBenchExperiment, expStart, time.Now(), spans.Str("exp", id), spans.None)
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "fadebench: %s: %v\n", id, err)
			if *asJSON {
				enc.Encode(report{ID: id, Elapsed: elapsed.String(), Error: err.Error()})
			}
			if errors.Is(err, fade.ErrCanceled) || ctx.Err() != nil {
				// Stop launching experiments, but fall through: the metrics
				// accumulated from completed experiments still get flushed.
				canceled = true
				break
			}
			continue
		}
		fmt.Fprintf(os.Stderr, "fadebench: %s done in %s (%d cells)\n", id, elapsed, len(t.Cells))
		if *asJSON {
			enc.Encode(report{
				ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows,
				Notes: t.Notes, Elapsed: elapsed.String(), Cells: t.Cells,
			})
		} else {
			fmt.Println(t.String())
			fmt.Printf("[%s: %s]\n\n", id, elapsed)
		}
		for _, c := range t.Cells {
			if *metricsAt != "" {
				labeled = append(labeled, fade.LabeledSnapshot{
					Labels: []fade.MetricLabel{{Key: "exp", Value: t.ID}, {Key: "cell", Value: c.Cell}},
					Snap:   c.Metrics,
				})
			}
			if tlFile != nil && len(c.Timeline) > 0 {
				if err := fade.WriteTimeline(tlFile, t.ID+"/"+c.Cell, c.Timeline); err != nil {
					fmt.Fprintf(os.Stderr, "fadebench: -timeline: %v\n", err)
					return 1
				}
			}
		}
	}
	if *metricsAt != "" {
		f, err := os.Create(*metricsAt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fadebench: -metrics: %v\n", err)
			return 1
		}
		err = fade.WriteMetrics(f, labeled)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fadebench: -metrics: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "fadebench: total wall time %s\n", time.Since(start).Round(time.Millisecond))
	if tr != nil {
		tr.Wall(spans.NameCLIRun, start, time.Now(), spans.Str("exp", *exp), spans.None)
		f, err := os.Create(*traceAt)
		if err == nil {
			err = spans.WriteChromeJSON(f, tr)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fadebench: -trace: %v\n", err)
			failed = true
		}
	}
	logCacheStats(cache)
	if canceled {
		return 2
	}
	if failed {
		return 1
	}
	return 0
}

// distribute is -coordinator mode: the selected experiments' cells are
// registered with a fabric coordinator listening on addr, fadeworker
// processes lease and execute them over HTTP, and Drive executes
// whatever the workers cannot finish locally. On return the cache holds
// the results table assembly reads.
func distribute(ctx context.Context, addr string, ids []string, o fade.ExperimentOptions, ttl time.Duration, retries int, grace time.Duration) error {
	coord, err := fabric.NewCoordinator(fabric.Options{
		Cache:      o.Cache,
		LeaseTTL:   ttl,
		MaxRetries: retries,
	})
	if err != nil {
		return err
	}
	total, missing := 0, 0
	for _, id := range ids {
		cells, err := experiments.CellsFor(id, o)
		if err != nil {
			return err
		}
		total += len(cells)
		missing += len(experiments.Missing(cells, o.Cache))
		coord.Add(cells)
	}
	coord.Seal()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("coordinator listen: %w", err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "fadebench: coordinator on %s: %d cells, %d to simulate (point workers at it with: fadeworker -coordinator http://%s)\n",
		ln.Addr(), total, missing, ln.Addr())

	err = coord.Drive(ctx, grace, o.Parallel)
	st := coord.Stats()
	fmt.Fprintf(os.Stderr, "fadebench: fabric: %d/%d cells done (%d workers, %d leases granted, %d expired, %d retries, %d run locally)\n",
		st.Done, st.Total, st.WorkersRegistered, st.LeasesGranted, st.LeasesExpired, st.Retries, st.LocalCells)
	if err == nil && st.Workers > 0 {
		// Workers poll every couple of seconds; keep answering "sweep
		// done" long enough for each to observe it and exit cleanly
		// instead of finding the port closed mid-poll.
		select {
		case <-time.After(3 * time.Second):
		case <-ctx.Done():
		}
	}
	return err
}

// prime is -shard mode: execute this shard's cells of every selected
// experiment into the shared cache, building no tables.
func prime(ctx context.Context, ids []string, o fade.ExperimentOptions, shard, count int, cache *fade.ResultCache) int {
	start := time.Now()
	failed := false
	for _, id := range ids {
		fmt.Fprintf(os.Stderr, "fadebench: priming %s shard %d/%d...\n", id, shard, count)
		ran, total, err := fade.PrimeExperiment(id, o, shard, count)
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "fadebench: %s: %v\n", id, err)
			if errors.Is(err, fade.ErrCanceled) || ctx.Err() != nil {
				logCacheStats(cache)
				return 2
			}
			continue
		}
		fmt.Fprintf(os.Stderr, "fadebench: %s shard %d/%d done (%d of %d cells)\n", id, shard, count, ran, total)
	}
	fmt.Fprintf(os.Stderr, "fadebench: total wall time %s\n", time.Since(start).Round(time.Millisecond))
	logCacheStats(cache)
	if failed {
		return 1
	}
	return 0
}

// parseShard parses "i/n" with 0 <= i < n.
func parseShard(s string) (shard, count int, err error) {
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("want i/n, got %q", s)
	}
	shard, err1 := strconv.Atoi(i)
	count, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil || count < 1 || shard < 0 || shard >= count {
		return 0, 0, fmt.Errorf("want i/n with 0 <= i < n, got %q", s)
	}
	return shard, count, nil
}

func logCacheStats(cache *fade.ResultCache) {
	if cache == nil {
		return
	}
	st := cache.Stats()
	fmt.Fprintf(os.Stderr, "fadebench: cache: %d hits, %d misses, %d disk reads, %d disk writes, %d corrupt\n",
		st.Hits, st.Misses, st.DiskReads, st.DiskWrites, st.DiskCorrupt)
}
