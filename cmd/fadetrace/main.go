// Command fadetrace generates a synthetic benchmark trace and prints its
// stream statistics: instruction mix, high-level event rates, value-tag
// densities, and the monitored-event fraction under each monitor. It is the
// tool used to inspect and calibrate the workload profiles against the
// paper's reported characteristics.
//
// Usage:
//
//	fadetrace -bench omnet -n 500000
package main

import (
	"flag"
	"fmt"
	"os"

	"fade/internal/isa"
	"fade/internal/monitor"
	"fade/internal/trace"
)

// sourceFor opens the replay file or builds a generator.
func sourceFor(bench string, replay string, seed, n uint64) (trace.Source, *trace.Generator, *trace.Profile, error) {
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return nil, nil, nil, err
		}
		rd, err := trace.NewReader(f)
		if err != nil {
			return nil, nil, nil, err
		}
		prof, ok := trace.Lookup(rd.Profile())
		if !ok {
			return nil, nil, nil, fmt.Errorf("trace recorded for unknown profile %q", rd.Profile())
		}
		return rd, nil, prof, nil
	}
	prof, ok := trace.Lookup(bench)
	if !ok {
		return nil, nil, nil, fmt.Errorf("unknown benchmark %q (have: %v)", bench, trace.AllNames())
	}
	g := trace.New(prof, seed, n)
	return g, g, prof, nil
}

func main() {
	var (
		bench  = flag.String("bench", "astar", "benchmark profile")
		n      = flag.Uint64("n", 300_000, "instructions to generate")
		seed   = flag.Uint64("seed", 1, "random seed")
		dump   = flag.Int("dump", 0, "print the first N instructions")
		record = flag.String("record", "", "write the generated trace to this file and exit")
		replay = flag.String("replay", "", "read instructions from this trace file instead of generating")
	)
	flag.Parse()

	if *record != "" {
		prof, ok := trace.Lookup(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "fadetrace: unknown benchmark %q\n", *bench)
			os.Exit(1)
		}
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fadetrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		count, err := trace.Record(f, prof.Name, trace.New(prof, *seed, *n), 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fadetrace:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d instructions of %s to %s\n", count, prof.Name, *record)
		return
	}

	src, gen, prof, err := sourceFor(*bench, *replay, *seed, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fadetrace:", err)
		os.Exit(1)
	}
	threads := 1
	if prof.Parallel {
		threads = prof.Threads
	}

	mons := make(map[string]monitor.Monitor)
	counts := make(map[string]uint64)
	for _, name := range monitor.Names() {
		m, err := monitor.New(name, threads)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fadetrace:", err)
			os.Exit(1)
		}
		mons[name] = m
	}

	opCount := map[isa.Op]uint64{}
	stackMem := uint64(0)
	var total uint64
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		if *dump > 0 && total < uint64(*dump) {
			fmt.Println(in)
		}
		total++
		opCount[in.Op]++
		if in.Op.IsMem() && in.Stack {
			stackMem++
		}
		for name, m := range mons {
			if m.Monitored(in) {
				counts[name]++
			}
		}
	}

	fmt.Printf("benchmark %s: %d instructions (parallel=%v threads=%d)\n", prof.Name, total, prof.Parallel, threads)
	fmt.Println("instruction mix:")
	for op := isa.Op(0); op < isa.NumOps; op++ {
		if c := opCount[op]; c > 0 {
			fmt.Printf("  %-9s %8d  %5.2f%%\n", op, c, 100*float64(c)/float64(total))
		}
	}
	mem := opCount[isa.OpLoad] + opCount[isa.OpStore]
	if mem > 0 {
		fmt.Printf("stack share of memory ops: %.1f%%\n", 100*float64(stackMem)/float64(mem))
	}
	if gen != nil {
		fmt.Printf("calls/rets: %d/%d  mallocs/frees: %d/%d  taint sources: %d  leaked allocs: %d\n",
			gen.Calls(), gen.Rets(), gen.Mallocs(), gen.Frees(), gen.Taints(), gen.Leaked())
	}
	fmt.Println("monitored-event fraction:")
	for _, name := range monitor.Names() {
		fmt.Printf("  %-10s %5.1f%%\n", name, 100*float64(counts[name])/float64(total))
	}
}
