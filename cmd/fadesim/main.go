// Command fadesim runs one monitoring-system simulation and prints a full
// report: slowdown versus the unmonitored baseline, filtering statistics,
// queue behaviour, and any detections the monitor raised.
//
// With -metrics the run's full metrics snapshot (see docs/METRICS.md) is
// written in the Prometheus text exposition format; -timeline records a
// cycle-sampled JSONL telemetry stream of the same registry.
//
// SIGINT/SIGTERM cancel the simulation at the next scheduler checkpoint:
// the run aborts with fade.ErrCanceled, the partial metrics and timeline
// collected so far are still flushed to the -metrics/-timeline sinks, and
// the process exits non-zero.
//
// Usage:
//
//	fadesim -bench astar -monitor MemLeak -accel fade -core 4way -topology single
//	fadesim -bench mcf -metrics out.prom -timeline out.jsonl
//	fadesim -bench astar -check -fault-stall severe -fault-drop 0.001
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"fade"
	"fade/internal/spans"
)

func main() {
	os.Exit(run())
}

// run holds the whole program so the deferred signal cleanup executes and
// the exit code can express how the run ended (0 ok, 1 error, 2 canceled).
func run() int {
	var (
		bench    = flag.String("bench", "astar", "benchmark profile (see -list)")
		mon      = flag.String("monitor", "MemLeak", "monitor: AddrCheck|MemCheck|TaintCheck|MemLeak|AtomCheck")
		accel    = flag.String("accel", "fade", "acceleration: none|blocking|fade")
		coreKind = flag.String("core", "4way", "core type: inorder|2way|4way")
		topology = flag.String("topology", "single", "topology: single|two (ignored when -app-cores is set)")
		appCores = flag.Int("app-cores", 0, "CMP: number of application cores (0 = use -topology)")
		monCores = flag.Int("mon-cores", 0, "CMP: dedicated monitor cores (default: one per application core)")
		instrs   = flag.Uint64("instrs", 400_000, "application instructions to simulate")
		seed     = flag.Uint64("seed", 1, "random seed")
		evq      = flag.Int("evq", 32, "event queue entries")
		ufq      = flag.Int("ufq", 16, "unfiltered event queue entries")
		mdcache  = flag.Int("mdcache", 0, "MD cache size in bytes (0 = paper's 4KB)")
		warmup   = flag.Uint64("warmup", 0, "exclude the first N instructions from the slowdown measurement")
		leaks    = flag.Float64("inject-leaks", 0, "fraction of frees turned into leaks (bug injection)")
		wild     = flag.Float64("inject-wild", 0, "wild accesses per 1000 instructions (bug injection)")
		list     = flag.Bool("list", false, "list benchmarks and monitors, then exit")

		check     = flag.Bool("check", false, "run the per-cycle invariant checker; a violation aborts the run with the invariant named")
		ff        = flag.Bool("fast-forward", true, "skip ahead through quiescent cycle spans (results are byte-identical; -check and fault injection force cycle-exact execution)")
		maxCycles = flag.Uint64("max-cycles", 0, "abort (non-silently) if the run exceeds this many cycles (0 = derived default)")
		wallClock = flag.Duration("wall-clock", 0, "abort the run after this much wall-clock time (0 = unlimited)")

		faultSeed    = flag.Uint64("fault-seed", 0, "seed of the fault-injector RNG streams (0 = derive from -seed)")
		faultStall   = flag.String("fault-stall", "none", "monitor stall-burst severity: none|mild|moderate|severe")
		faultMEQ     = flag.Float64("fault-meq", 0, "inject MEQ pressure bursts shrinking effective capacity by this factor in (0,1]")
		faultUFQ     = flag.Float64("fault-ufq", 0, "inject UFQ pressure bursts shrinking effective capacity by this factor in (0,1]")
		faultDrop    = flag.Float64("fault-drop", 0, "event-drop probe: silently drop monitored events with this probability")
		faultCorrupt = flag.Float64("fault-corrupt", 0, "metadata-corruption probe: mean cycles between shadow-memory bit flips (0 = off)")

		metricsAt = flag.String("metrics", "", "write the run's metrics as a Prometheus text exposition to this file")
		tlAt      = flag.String("timeline", "", "write cycle-sampled JSONL telemetry to this file")
		tlEvery   = flag.Uint64("timeline-every", 0, "cycles between timeline samples (default 1000 when -timeline is set)")
		traceAt   = flag.String("trace", "", "write the run's span trace as Chrome trace-event JSON (Perfetto-loadable) to this file")
		traceJL   = flag.String("trace-jsonl", "", "write the run's span trace as one-span-per-line JSONL to this file")
		traceCap  = flag.Int("trace-cap", 1<<16, "span ring capacity when tracing; oldest spans are dropped on overflow")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("serial benchmarks:  ", strings.Join(fade.Benchmarks(), " "))
		fmt.Println("parallel benchmarks:", strings.Join(fade.ParallelBenchmarks(), " "))
		fmt.Println("monitors:           ", strings.Join(fade.MonitorNames(), " "))
		return 0
	}

	if *tlAt != "" && *tlEvery == 0 {
		*tlEvery = 1000
	}

	cfg := fade.DefaultConfig(*mon)
	cfg.Instrs = *instrs
	cfg.Seed = *seed
	cfg.TimelineEvery = *tlEvery
	cfg.EventQueueCap = *evq
	cfg.UnfilteredCap = *ufq
	cfg.MDCacheBytes = *mdcache
	cfg.WarmupInstrs = *warmup
	cfg.CheckInvariants = *check
	cfg.FastForward = *ff
	cfg.Limits = fade.RunLimits{MaxCycles: *maxCycles, WallClock: *wallClock}
	if *leaks > 0 || *wild > 0 {
		cfg.Inject = &fade.Inject{LeakFrac: *leaks, WildAccessPer1K: *wild}
	}

	plan := &fade.FaultPlan{Seed: *faultSeed}
	if *faultStall != "none" {
		sp, ok := fade.StallSeverity(*faultStall)
		if !ok {
			fatal("unknown -fault-stall %q", *faultStall)
		}
		plan.MonitorStall = sp.MonitorStall
	}
	if *faultMEQ > 0 {
		plan.MEQPressure = &fade.FaultPressure{MeanGap: 2048, MeanDuration: 256, CapFactor: *faultMEQ}
	}
	if *faultUFQ > 0 {
		plan.UFQPressure = &fade.FaultPressure{MeanGap: 2048, MeanDuration: 256, CapFactor: *faultUFQ}
	}
	if *faultDrop > 0 {
		plan.EventDrop = &fade.FaultDrop{Rate: *faultDrop}
	}
	if *faultCorrupt > 0 {
		plan.MDCorruption = &fade.FaultCorrupt{MeanGap: *faultCorrupt}
	}
	cfg.Faults = plan

	switch *accel {
	case "none":
		cfg.Accel = fade.Unaccelerated
	case "blocking":
		cfg.Accel = fade.FADEBlocking
	case "fade":
		cfg.Accel = fade.FADENonBlocking
	default:
		fatal("unknown -accel %q", *accel)
	}
	switch *coreKind {
	case "inorder":
		cfg.Core = fade.InOrder
	case "2way":
		cfg.Core = fade.OoO2
	case "4way":
		cfg.Core = fade.OoO4
	default:
		fatal("unknown -core %q", *coreKind)
	}
	switch {
	case *appCores > 0:
		mc := *monCores
		if mc == 0 {
			mc = *appCores
		}
		cfg.Topology = fade.Topology{AppCores: *appCores, MonCores: mc}
	case *topology == "single":
		cfg.Topology = fade.SingleCoreSMT
	case *topology == "two":
		cfg.Topology = fade.TwoCore
	default:
		fatal("unknown -topology %q", *topology)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("-cpuprofile: %v", err)
		}
	}

	// SIGINT/SIGTERM cancel the run at the next scheduler checkpoint; the
	// partial result still flows to the sinks below.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// A run traces exactly when a sink asks for the trace; the trace ID is
	// derived from the run identity so same-seed cycle-domain exports are
	// byte-identical (wall spans carry real timestamps and are not).
	var tr *spans.Trace
	if *traceAt != "" || *traceJL != "" {
		tr = spans.New(fmt.Sprintf("%s-%s-seed%d", *bench, *mon, *seed), *traceCap)
		ctx = spans.NewContext(ctx, tr)
	}

	wallStart := time.Now()
	res, err := fade.RunContext(ctx, *bench, cfg)
	if tr != nil {
		tr.Wall(spans.NameCLIRun, wallStart, time.Now(), spans.Str("bench", *bench), spans.None)
	}
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	code := 0
	switch {
	case err == nil:
		printResult(res)
	case errors.Is(err, fade.ErrCanceled):
		code = 2
		fmt.Fprintf(os.Stderr, "fadesim: %v\n", err)
	default:
		code = 1
		fmt.Fprintf(os.Stderr, "fadesim: %v\n", err)
	}

	// Flush the sinks even after an abort: a canceled or invariant-failed
	// run still wrote everything it observed into the registry (plus the
	// run.aborted marker), and partial telemetry is exactly what a
	// post-mortem needs.
	if res != nil {
		cell := *bench + "/" + *mon
		if *metricsAt != "" {
			labels := []fade.MetricLabel{
				{Key: "bench", Value: *bench}, {Key: "monitor", Value: *mon}, {Key: "accel", Value: *accel},
			}
			if werr := writeFile(*metricsAt, func(f *os.File) error {
				return fade.WriteMetrics(f, []fade.LabeledSnapshot{{Labels: labels, Snap: res.Metrics}})
			}); werr != nil {
				fmt.Fprintf(os.Stderr, "fadesim: -metrics: %v\n", werr)
				code = 1
			}
		}
		if *tlAt != "" {
			if werr := writeFile(*tlAt, func(f *os.File) error {
				return fade.WriteTimeline(f, cell, res.Timeline)
			}); werr != nil {
				fmt.Fprintf(os.Stderr, "fadesim: -timeline: %v\n", werr)
				code = 1
			}
		}
	}
	// Trace sinks flush even after an abort — the partial trace (including
	// the sim.abort instant) is the post-mortem artifact.
	if tr != nil {
		if *traceAt != "" {
			if werr := writeFile(*traceAt, func(f *os.File) error {
				return spans.WriteChromeJSON(f, tr)
			}); werr != nil {
				fmt.Fprintf(os.Stderr, "fadesim: -trace: %v\n", werr)
				code = 1
			}
		}
		if *traceJL != "" {
			if werr := writeFile(*traceJL, func(f *os.File) error {
				return spans.WriteJSONL(f, tr)
			}); werr != nil {
				fmt.Fprintf(os.Stderr, "fadesim: -trace-jsonl: %v\n", werr)
				code = 1
			}
		}
		if d := tr.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "fadesim: trace ring overflowed: %d oldest spans dropped (raise -trace-cap)\n", d)
		}
	}
	if *memProf != "" {
		if werr := writeFile(*memProf, func(f *os.File) error {
			runtime.GC()
			return pprof.Lookup("heap").WriteTo(f, 0)
		}); werr != nil {
			fmt.Fprintf(os.Stderr, "fadesim: -memprofile: %v\n", werr)
			code = 1
		}
	}
	return code
}

// writeFile creates path and runs fn over it, folding in the close error.
func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func printResult(r *fade.Result) {
	fmt.Printf("benchmark        %s\n", r.Benchmark)
	fmt.Printf("monitor          %s\n", r.Config.Monitor)
	fmt.Printf("system           %s, %s, %s\n", r.Config.Topology, r.Config.Core, r.Config.Accel)
	fmt.Printf("instructions     %d\n", r.Instrs)
	fmt.Printf("monitored events %d (%.2f per instr)\n", r.MonitoredEvents,
		float64(r.MonitoredEvents)/float64(r.Instrs))
	fmt.Printf("baseline cycles  %d (IPC %.2f)\n", r.BaselineCycles, r.BaselineIPC)
	fmt.Printf("monitored cycles %d (IPC %.2f)\n", r.Cycles, r.AppIPC)
	fmt.Printf("slowdown         %.2fx\n", r.Slowdown)
	if len(r.Cores) > 1 {
		for _, c := range r.Cores {
			fmt.Printf("  core %-2d        cycles %d (baseline %d), slowdown %.2fx, instrs %d, handlers %d\n",
				c.Core, c.Cycles, c.BaselineCycles, c.Slowdown, c.Instrs, c.HandlersRun)
		}
	}
	fmt.Printf("event queue      max occupancy %d, producer stall cycles %d\n", r.EvqMax, r.AppStallCycles)
	fmt.Printf("handlers run     %d\n", r.HandlersRun)
	if f := r.Filter; f != nil {
		fmt.Printf("filtering        %.1f%% of %d instruction events (CC %d, RU %d, partial %d)\n",
			100*f.FilterRatio(), f.InstrEvents, f.FilteredCC, f.FilteredRU, f.PartialShort)
		fmt.Printf("unfiltered sent  %d (mean burst %.1f, stack events %d, high-level %d)\n",
			f.UnfilteredSent, f.BurstSizes.Mean(), f.StackEvents, f.HighLevelEvents)
		fmt.Printf("FU stalls        mdcache %d, mtlb %d, blocked %d, drain %d, suu %d, enqueue %d, fsq %d\n",
			f.MDCacheStalls, f.MTLBStalls, f.BlockedCycles, f.DrainCycles, f.SUUCycles, f.EnqueueStalls, f.FSQStalls)
		fmt.Printf("MD cache         miss rate %.3f; M-TLB miss rate %.4f\n", r.MDCacheMissRate, r.MTLBMissRate)
	}
	fmt.Printf("utilization      app-idle %.0f%%, monitor-idle %.0f%%, both-busy %.0f%%\n",
		100*r.AppIdleFrac, 100*r.MonIdleFrac, 100*r.BothBusyFrac)
	if len(r.Reports) > 0 {
		fmt.Printf("detections       %d\n", len(r.Reports))
		max := len(r.Reports)
		if max > 10 {
			max = 10
		}
		for _, rep := range r.Reports[:max] {
			fmt.Printf("  %s\n", rep)
		}
		if len(r.Reports) > max {
			fmt.Printf("  ... and %d more\n", len(r.Reports)-max)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fadesim: "+format+"\n", args...)
	os.Exit(1)
}
