// Command fadeworker is the distributed-sweep worker: it leases
// simulation cells from a fadebench coordinator (fadebench -coordinator),
// executes them through a local content-addressed result cache, and
// uploads the encoded outcomes. Workers are stateless and disposable —
// a killed worker's leases expire at the coordinator and its cells are
// re-queued, so adding or losing workers mid-sweep never changes the
// final tables.
//
// Usage:
//
//	fadeworker -coordinator http://bench-host:9090
//	fadeworker -coordinator http://bench-host:9090 -parallel 8 -cache-dir /var/tmp/fade-cache
//
// The process exits 0 when the coordinator reports the sweep done, 2 on
// SIGINT/SIGTERM, and 1 when the coordinator stays unreachable past the
// client's retry budget.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"fade/internal/client"
	"fade/internal/fabric"
	"fade/internal/rcache"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		coord    = flag.String("coordinator", "", "fabric coordinator base URL (required), e.g. http://bench-host:9090")
		id       = flag.String("id", "", "worker identity in leases and logs (default w-<hostname>-<pid>)")
		parallel = flag.Int("parallel", 0, "cells to execute concurrently (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "worker-local result cache directory; re-leased cells replay from disk instead of simulating")
		cacheMem = flag.Int("cache-mem", 0, "in-memory result cache entries (0 = default)")
		verbose  = flag.Bool("v", false, "log every lease and heartbeat event")
	)
	flag.Parse()
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "fadeworker: -coordinator is required")
		flag.Usage()
		return 1
	}
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}

	cache, err := rcache.New(rcache.Options{MemEntries: *cacheMem, Dir: *cacheDir})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fadeworker: -cache-dir: %v\n", err)
		return 1
	}
	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// SIGINT/SIGTERM stop leasing and cancel in-flight cells; the
	// coordinator re-queues whatever this worker was holding.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = fabric.RunWorker(ctx, fabric.WorkerOptions{
		Coordinator: client.New(client.Options{BaseURL: *coord}),
		ID:          *id,
		Parallel:    *parallel,
		Cache:       cache,
		Logger:      logger,
	})
	st := cache.Stats()
	fmt.Fprintf(os.Stderr, "fadeworker: cache: %d hits, %d misses, %d disk reads, %d disk writes, %d corrupt\n",
		st.Hits, st.Misses, st.DiskReads, st.DiskWrites, st.DiskCorrupt)
	switch {
	case err == nil:
		fmt.Fprintln(os.Stderr, "fadeworker: sweep done")
		return 0
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "fadeworker: interrupted; leases will expire and re-queue")
		return 2
	default:
		fmt.Fprintf(os.Stderr, "fadeworker: %v\n", err)
		return 1
	}
}
