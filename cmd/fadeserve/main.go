// Command fadeserve is the long-running FADE monitoring service: an
// HTTP+JSON daemon that accepts simulation run submissions, schedules them
// onto a bounded worker pool with per-tenant fairness, and serves results,
// timelines, and Prometheus metrics. See docs/SERVING.md for the API.
//
// Usage:
//
//	fadeserve -addr :8080 -workers 8 -queue 64 -tenant-rate 10
//
// SIGINT/SIGTERM starts a graceful drain: the listener stops accepting,
// in-flight runs finish (up to -drain-timeout), and partial results are
// flushed for anything still running when the timeout expires.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fade/internal/rcache"
	"fade/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("workers", 0, "simulation worker pool width (0 = GOMAXPROCS)")
		queueCap      = flag.Int("queue", 0, "admission queue capacity (0 = 4x workers)")
		tenantRate    = flag.Float64("tenant-rate", 0, "per-tenant submissions per second (0 = unlimited)")
		tenantBurst   = flag.Float64("tenant-burst", 8, "per-tenant token bucket burst")
		defaultInstrs = flag.Uint64("default-instrs", 400_000, "instruction budget when a submission omits instrs")
		maxInstrs     = flag.Uint64("max-instrs", serve.DefaultLimits.MaxInstrs, "per-run instruction budget ceiling")
		maxWallClock  = flag.Duration("max-wall-clock", serve.DefaultLimits.MaxWallClock, "per-run wall-clock ceiling (also the default when a submission omits limits)")
		metricsRuns   = flag.Int("metrics-runs", 32, "recent run snapshots retained on /metrics (-1 disables)")
		memSoftMB     = flag.Uint64("mem-soft-limit-mb", 0, "heap soft limit in MiB arming the load shedder (0 disables)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM before in-flight runs are canceled")
		cacheDir      = flag.String("cache-dir", "", "content-addressed result cache directory; identical resubmissions return the stored result (shareable with fadebench -cache-dir)")
		cacheMem      = flag.Int("cache-mem", 0, "in-memory result cache entries (0 = default; effective with -cache-dir)")
	)
	flag.Parse()
	var cache *rcache.Cache
	if *cacheDir != "" {
		c, err := rcache.New(rcache.Options{MemEntries: *cacheMem, Dir: *cacheDir})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fadeserve: -cache-dir:", err)
			os.Exit(1)
		}
		cache = c
	}
	if err := run(*addr, serve.Options{
		Workers:           *workers,
		QueueCap:          *queueCap,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		DefaultInstrs:     *defaultInstrs,
		Limits:            limits(*maxInstrs, *maxWallClock),
		MetricsRuns:       *metricsRuns,
		MemSoftLimitBytes: *memSoftMB << 20,
		Cache:             cache,
	}, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "fadeserve:", err)
		os.Exit(1)
	}
}

func limits(maxInstrs uint64, maxWall time.Duration) serve.Limits {
	l := serve.DefaultLimits
	if maxInstrs > 0 {
		l.MaxInstrs = maxInstrs
	}
	if maxWall > 0 {
		l.MaxWallClock = maxWall
	}
	return l
}

func run(addr string, opts serve.Options, drainTimeout time.Duration) error {
	srv := serve.New(opts)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("fadeserve listening on %s", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: status/metrics requests keep being served while
	// queued and in-flight runs complete, then the listener closes.
	log.Printf("fadeserve draining (budget %s)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("fadeserve drain expired: remaining runs canceled (%v)", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	log.Printf("fadeserve stopped")
	return nil
}
