// Command fadeserve is the long-running FADE monitoring service: an
// HTTP+JSON daemon that accepts simulation run submissions, schedules them
// onto a bounded worker pool with per-tenant fairness, and serves results,
// timelines, span traces, and Prometheus metrics. See docs/SERVING.md for
// the API and docs/TRACING.md for the trace format.
//
// Usage:
//
//	fadeserve -addr :8080 -workers 8 -queue 64 -tenant-rate 10
//
// With -cache-dir, identical submissions are served from the
// content-addressed result cache, and concurrent duplicates coalesce
// onto a single in-flight simulation (the extras return the same bytes
// with "cached": true). 429 responses carry a Retry-After computed from
// the current backlog. The same error envelope and retry discipline are
// spoken by the distributed sweep fabric (fadebench -coordinator /
// fadeworker); internal/client implements the client side for both.
//
// SIGINT/SIGTERM starts a graceful drain: the listener stops accepting,
// in-flight runs finish (up to -drain-timeout), and partial results are
// flushed for anything still running when the timeout expires.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fade/internal/rcache"
	"fade/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("workers", 0, "simulation worker pool width (0 = GOMAXPROCS)")
		queueCap      = flag.Int("queue", 0, "admission queue capacity (0 = 4x workers)")
		tenantRate    = flag.Float64("tenant-rate", 0, "per-tenant submissions per second (0 = unlimited)")
		tenantBurst   = flag.Float64("tenant-burst", 8, "per-tenant token bucket burst")
		defaultInstrs = flag.Uint64("default-instrs", 400_000, "instruction budget when a submission omits instrs")
		maxInstrs     = flag.Uint64("max-instrs", serve.DefaultLimits.MaxInstrs, "per-run instruction budget ceiling")
		maxWallClock  = flag.Duration("max-wall-clock", serve.DefaultLimits.MaxWallClock, "per-run wall-clock ceiling (also the default when a submission omits limits)")
		metricsRuns   = flag.Int("metrics-runs", 32, "recent run snapshots retained on /metrics (-1 disables)")
		memSoftMB     = flag.Uint64("mem-soft-limit-mb", 0, "heap soft limit in MiB arming the load shedder (0 disables)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM before in-flight runs are canceled")
		cacheDir      = flag.String("cache-dir", "", "content-addressed result cache directory; identical resubmissions return the stored result (shareable with fadebench -cache-dir)")
		cacheMem      = flag.Int("cache-mem", 0, "in-memory result cache entries (0 = default; effective with -cache-dir)")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		debugAddr     = flag.String("debug-addr", "", "separate listener for /debug/pprof (empty disables; keep off the public address)")
		traceDir      = flag.String("trace-dir", "", "directory where each finished run's Chrome trace JSON is persisted as <id>.trace.json (empty keeps traces in memory only)")
		traceCap      = flag.Int("trace-cap", 0, "per-run span ring capacity (0 = default, negative disables tracing)")
	)
	flag.Parse()

	lvl, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fadeserve: -log-level:", err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	var cache *rcache.Cache
	if *cacheDir != "" {
		c, err := rcache.New(rcache.Options{MemEntries: *cacheMem, Dir: *cacheDir})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fadeserve: -cache-dir:", err)
			os.Exit(1)
		}
		cache = c
	}
	if err := run(*addr, *debugAddr, serve.Options{
		Workers:           *workers,
		QueueCap:          *queueCap,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		DefaultInstrs:     *defaultInstrs,
		Limits:            limits(*maxInstrs, *maxWallClock),
		MetricsRuns:       *metricsRuns,
		MemSoftLimitBytes: *memSoftMB << 20,
		Cache:             cache,
		TraceDir:          *traceDir,
		TraceCap:          *traceCap,
		Logger:            logger,
	}, *drainTimeout, logger); err != nil {
		fmt.Fprintln(os.Stderr, "fadeserve:", err)
		os.Exit(1)
	}
}

func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown level %q (want debug, info, warn, or error)", s)
}

func limits(maxInstrs uint64, maxWall time.Duration) serve.Limits {
	l := serve.DefaultLimits
	if maxInstrs > 0 {
		l.MaxInstrs = maxInstrs
	}
	if maxWall > 0 {
		l.MaxWallClock = maxWall
	}
	return l
}

// debugMux mounts net/http/pprof on a private mux so profiling never rides
// the public listener (DefaultServeMux is deliberately not used).
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(addr, debugAddr string, opts serve.Options, drainTimeout time.Duration, logger *slog.Logger) error {
	srv := serve.New(opts)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("fadeserve listening", "addr", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	var debugSrv *http.Server
	if debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("fadeserve debug listener", "addr", debugAddr, "path", "/debug/pprof/")
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("fadeserve debug listener failed", "err", err.Error())
			}
		}()
		defer debugSrv.Close()
	}

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: status/metrics requests keep being served while
	// queued and in-flight runs complete, then the listener closes.
	logger.Info("fadeserve draining", "budget", drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("fadeserve drain expired: remaining runs canceled", "err", err.Error())
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	logger.Info("fadeserve stopped")
	return nil
}
