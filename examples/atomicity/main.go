// Atomicity: demonstrate AtomCheck (AVIO-style) finding unserializable
// access interleavings in a four-thread workload with heavy sharing, and
// compare the single-core and two-core monitoring systems on the same
// workload (the Fig. 11a design-point question).
package main

import (
	"fmt"
	"log"

	"fade"
)

func main() {
	const bench = "streamc" // shared center table -> frequent conflicts

	cfg := fade.DefaultConfig("AtomCheck")
	cfg.Instrs = 300_000

	single, err := fade.Run(bench, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Topology = fade.TwoCore
	twoCore, err := fade.Run(bench, cfg)
	if err != nil {
		log.Fatal(err)
	}

	violations := 0
	for _, r := range single.Reports {
		if r.Kind == "atomicity-violation" {
			violations++
		}
	}

	fmt.Printf("AtomCheck on %s (4 threads):\n\n", bench)
	fmt.Printf("  atomicity-violation reports: %d\n", violations)
	fmt.Printf("  partial-filter hit rate:     %.1f%%\n", 100*single.Filter.FilterRatio())
	fmt.Printf("  single-core slowdown:        %.2fx\n", single.Slowdown)
	fmt.Printf("  two-core slowdown:           %.2fx (benefit %.0f%%)\n",
		twoCore.Slowdown, 100*(single.Slowdown/twoCore.Slowdown-1))
	for i, r := range single.Reports {
		if r.Kind == "atomicity-violation" {
			fmt.Printf("\nexample: %s\n", r)
			_ = i
			break
		}
	}
}
