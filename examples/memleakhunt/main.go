// Memleakhunt: demonstrate MemLeak's reference-counting leak detection on a
// program that deliberately drops allocations, and show that FADE
// acceleration does not change what the monitor finds — only how fast the
// application runs while being monitored.
package main

import (
	"fmt"
	"log"

	"fade"
)

func main() {
	const bench = "omnet" // allocation-heavy benchmark

	// Inject leaks: 30% of would-be frees instead drop the allocation's
	// last reference without freeing it.
	inject := &fade.Inject{LeakFrac: 0.30}

	cfg := fade.DefaultConfig("MemLeak")
	cfg.Instrs = 300_000
	cfg.Inject = inject

	accel, err := fade.Run(bench, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Accel = fade.Unaccelerated
	soft, err := fade.Run(bench, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MemLeak on %s with injected leaks:\n\n", bench)
	fmt.Printf("  software-only: %3d leak reports, slowdown %.2fx\n", countLeaks(soft.Reports), soft.Slowdown)
	fmt.Printf("  with FADE:     %3d leak reports, slowdown %.2fx\n", countLeaks(accel.Reports), accel.Slowdown)
	fmt.Printf("\nfirst few reports:\n")
	for i, r := range accel.Reports {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(accel.Reports)-5)
			break
		}
		fmt.Printf("  %s\n", r)
	}
	if countLeaks(soft.Reports) != countLeaks(accel.Reports) {
		log.Fatal("BUG: acceleration changed the monitor's findings")
	}
	fmt.Println("\nFADE accelerated monitoring without changing detection results.")
}

func countLeaks(reports []fade.Report) int {
	n := 0
	for _, r := range reports {
		if r.Kind == "memory-leak" {
			n++
		}
	}
	return n
}
