// Watchpoint: a complete USER-DEFINED monitor built on the public API,
// demonstrating the "programmable" in FADE's title. The tool watches a set
// of memory regions and reports every store into them — an unlimited-
// watchpoint debugger in the style of iWatcher (the paper's related work).
//
// The FADE programming is a single clean-check rule: stores whose target
// word is unwatched (metadata 0) are filtered in hardware; only stores that
// hit a watched word reach the software handler. On a typical workload the
// accelerator elides >99% of the monitoring work while every watched write
// is still caught.
package main

import (
	"fmt"
	"log"

	"fade"
)

// watchedByte marks a watched word in critical metadata.
const watchedByte = 1

// Watchpoint implements fade.Monitor.
type Watchpoint struct {
	regions []region
	hits    []fade.Report
}

type region struct{ base, size uint32 }

// Watch adds a region to watch. Call before the simulation starts.
func (w *Watchpoint) Watch(base, size uint32) {
	w.regions = append(w.regions, region{base, size})
}

// Name implements fade.Monitor.
func (w *Watchpoint) Name() string { return "Watchpoint" }

// Kind implements fade.Monitor: only memory instructions are examined.
func (w *Watchpoint) Kind() fade.MonitorKind { return fade.MemoryTracking }

// Monitored selects stores — the only events that can trip a write
// watchpoint.
func (w *Watchpoint) Monitored(in fade.Instr) bool {
	return in.Op == fade.OpStore
}

// EventOf implements fade.Monitor.
func (w *Watchpoint) EventOf(in fade.Instr, seq uint64) fade.Event {
	return fade.Event{
		ID: 1, Kind: fade.EvInstr, Op: in.Op,
		PC: in.PC, Addr: in.Addr, Src1: in.Src1, Src2: in.Src2, Dest: in.Dest,
		Size: in.Size, Thread: in.Thread, Seq: seq,
	}
}

// TracksStack implements fade.Monitor: frames are never watched.
func (w *Watchpoint) TracksStack() bool { return false }

// Init marks the watched regions in critical metadata.
func (w *Watchpoint) Init(st *fade.MetadataState) {
	for _, r := range w.regions {
		st.Mem.SetRange(r.base, r.size, watchedByte)
	}
}

// Program installs the filtering rule: a store is filterable when the
// target word's metadata equals the "unwatched" invariant.
func (w *Watchpoint) Program(p fade.Programmer) error {
	if err := p.SetInvariant(0, 0); err != nil { // unwatched
		return err
	}
	return p.SetEntry(1, fade.Entry{
		D:         fade.OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		CC:        true,
		HandlerPC: 0x7000,
	})
}

// Handle implements fade.Monitor: unfiltered stores hit a watched word.
func (w *Watchpoint) Handle(ev fade.Event, st *fade.MetadataState, hc fade.HandleCtx) fade.HandleResult {
	if ev.Kind != fade.EvInstr {
		return fade.HandleResult{Cost: 4, Class: fade.ClassHigh}
	}
	var md byte
	if hc.MDValid {
		md = hc.D
	} else {
		md = st.Mem.Load(ev.Addr)
	}
	if md != watchedByte {
		return fade.HandleResult{Cost: 5, Class: fade.ClassCC}
	}
	rep := fade.Report{
		Tool: w.Name(), Kind: "watchpoint-hit", PC: ev.PC, Addr: ev.Addr,
		Seq: ev.Seq, Thread: ev.Thread,
		Detail: fmt.Sprintf("store to watched word %#x", ev.Addr),
	}
	w.hits = append(w.hits, rep)
	return fade.HandleResult{Cost: 60, Class: fade.ClassSlow, Reports: []fade.Report{rep}}
}

// Finalize implements fade.Monitor.
func (w *Watchpoint) Finalize(st *fade.MetadataState) []fade.Report { return nil }

func main() {
	// Watch two slices of the global region.
	wp := &Watchpoint{}
	wp.Watch(0x1000_0040, 64)
	wp.Watch(0x1000_0400, 128)

	cfg := fade.DefaultConfig("")
	cfg.Instrs = 200_000
	res, err := fade.RunWithMonitor("gobmk", cfg, wp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("custom Watchpoint monitor on gobmk:\n\n")
	fmt.Printf("  monitored stores:     %d\n", res.MonitoredEvents)
	fmt.Printf("  filtered in hardware: %.2f%%\n", 100*res.Filter.FilterRatio())
	fmt.Printf("  watchpoint hits:      %d\n", len(wp.hits))
	fmt.Printf("  slowdown:             %.2fx\n", res.Slowdown)
	if len(wp.hits) > 0 {
		fmt.Printf("\nfirst hit: %s\n", wp.hits[0])
	}
	if len(wp.hits) == 0 {
		log.Fatal("expected at least one hit on the hot globals")
	}
}
