// Quickstart: run one benchmark under one monitor, with and without FADE,
// and print the headline numbers of the paper — the slowdown reduction and
// the filtering ratio.
package main

import (
	"fmt"
	"log"

	"fade"
)

func main() {
	const bench, mon = "astar", "MemLeak"

	// Unaccelerated: every monitored event is handled in software on the
	// second hardware thread.
	cfg := fade.DefaultConfig(mon)
	cfg.Accel = fade.Unaccelerated
	unacc, err := fade.Run(bench, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// FADE: the accelerator filters the common case; software sees only
	// unfilterable events.
	cfg.Accel = fade.FADENonBlocking
	accel, err := fade.Run(bench, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s under %s (single-core dual-threaded, 4-way OoO):\n\n", bench, mon)
	fmt.Printf("  unaccelerated slowdown: %.2fx (%d handlers in software)\n",
		unacc.Slowdown, unacc.HandlersRun)
	fmt.Printf("  FADE slowdown:          %.2fx (%d handlers in software)\n",
		accel.Slowdown, accel.HandlersRun)
	fmt.Printf("  filtering efficiency:   %.1f%% of %d instruction events\n",
		100*accel.Filter.FilterRatio(), accel.Filter.InstrEvents)
	fmt.Printf("  speedup from FADE:      %.2fx\n", unacc.Slowdown/accel.Slowdown)
}
