// Command benchcheck gates CI on allocation regressions: it reads `go test
// -bench -benchmem` output on stdin, compares each benchmark's allocs/op
// against the committed BENCH_baseline.json, and exits non-zero when any
// benchmark allocates meaningfully more than its recorded baseline.
//
//	go test -run '^$' -bench . -benchtime=1x -benchmem ./... | \
//	    go run ./scripts/benchcheck -baseline BENCH_baseline.json
//
// Only allocs/op is gated: allocation counts are effectively deterministic
// for this simulator, while ns/op on shared CI runners is not. A small
// slack (+2 allocs or +10%, whichever is larger) absorbs runtime-version
// noise; refresh the baseline deliberately when an intended change lands.
//
// A second mode, -check FILE, validates the shape of a written
// BENCH_<n>.json (date, go version, non-empty benchmarks with numeric
// ns_per_op/allocs_per_op, derived metrics present) without comparing
// anything. scripts/bench.sh runs it right after writing a file so a
// malformed entry fails fast instead of silently polluting the perf
// trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type baseline struct {
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func main() {
	base := flag.String("baseline", "BENCH_baseline.json", "baseline JSON to compare against")
	check := flag.String("check", "", "validate the shape of this BENCH_<n>.json and exit (no comparison)")
	flag.Parse()

	if *check != "" {
		if err := checkShape(*check); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("benchcheck: %s: shape ok\n", *check)
		return
	}

	raw, err := os.ReadFile(*base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", *base, err)
		os.Exit(1)
	}

	failed := false
	checked := 0
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := strings.TrimRight(fields[0], "0123456789")
		name = strings.TrimSuffix(name, "-")
		allocs, ok := parseUnit(fields, "allocs/op")
		if !ok {
			continue
		}
		want, ok := b.Benchmarks[name]["allocs_per_op"]
		if !ok {
			fmt.Printf("benchcheck: %-45s %8.0f allocs/op (no baseline, skipped)\n", name, allocs)
			continue
		}
		checked++
		limit := want + 2
		if pct := want * 1.10; pct > limit {
			limit = pct
		}
		status := "ok"
		if allocs > limit {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("benchcheck: %-45s %8.0f allocs/op (baseline %.0f, limit %.0f) %s\n",
			name, allocs, want, limit, status)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: stdin: %v\n", err)
		os.Exit(1)
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmarks matched the baseline — wrong -bench pattern?")
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchcheck: allocation regression vs "+*base)
		os.Exit(1)
	}
}

var dateRE = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}$`)

// checkShape validates one BENCH_<n>.json against the schema bench.sh
// emits. Every violation is reported, not just the first.
func checkShape(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Date       string                        `json:"date"`
		Go         string                        `json:"go"`
		Benchmarks map[string]map[string]float64 `json:"benchmarks"`
		Derived    map[string]float64            `json:"derived"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return err
	}
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if !dateRE.MatchString(doc.Date) {
		bad("date %q is not YYYY-MM-DD", doc.Date)
	}
	if !strings.HasPrefix(doc.Go, "go") {
		bad("go %q does not name a Go version", doc.Go)
	}
	if len(doc.Benchmarks) == 0 {
		bad("benchmarks map is empty")
	}
	for name, units := range doc.Benchmarks {
		for _, unit := range []string{"ns_per_op", "allocs_per_op"} {
			if _, ok := units[unit]; !ok {
				bad("benchmark %q is missing %s", name, unit)
			}
		}
		if units["ns_per_op"] <= 0 {
			bad("benchmark %q has non-positive ns_per_op", name)
		}
	}
	if doc.Derived == nil {
		bad("derived map is missing")
	}
	for name, v := range doc.Derived {
		if v <= 0 {
			bad("derived %q is non-positive (%v): its source benchmarks did not run", name, v)
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("%d problem(s):\n  %s", len(problems), strings.Join(problems, "\n  "))
	}
	return nil
}

// parseUnit pulls the value whose following field equals unit from a
// benchmark result line's (value, unit) pairs.
func parseUnit(fields []string, unit string) (float64, bool) {
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] != unit {
			continue
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
