// Command tracecheck validates Chrome trace-event JSON exports for CI's
// trace-smoke job: each file argument must parse, pass the structural
// validator (spans.ValidateChromeJSON), and contain at least one
// non-metadata event. Exit status is non-zero on the first failure.
//
//	go run ./cmd/fadesim -bench astar -trace out.trace.json
//	go run ./scripts/tracecheck out.trace.json
//
// With -require NAME (repeatable, comma-separated), every named span must
// appear in the file — the smoke job uses it to assert the run actually
// produced scheduler and episode spans, not just a well-formed envelope.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"fade/internal/spans"
)

func main() {
	require := flag.String("require", "", "comma-separated span names that must appear in every file")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require name,...] FILE...")
		os.Exit(2)
	}
	var wanted []string
	if *require != "" {
		wanted = strings.Split(*require, ",")
	}
	for _, path := range flag.Args() {
		if err := check(path, wanted); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("tracecheck: %s ok\n", path)
	}
}

func check(path string, wanted []string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := spans.ValidateChromeJSON(data); err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	names := map[string]bool{}
	events := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		events++
		names[e.Name] = true
		if !spans.Known(e.Name) {
			return fmt.Errorf("event name %q is not a registered span name", e.Name)
		}
	}
	if events == 0 {
		return fmt.Errorf("no span events (only metadata)")
	}
	for _, w := range wanted {
		if !names[w] {
			return fmt.Errorf("required span %q not present", w)
		}
	}
	return nil
}
