#!/usr/bin/env bash
# bench.sh — run the key benchmarks and append a dated BENCH_<n>.json entry
# to the repository's perf trajectory (BENCH_baseline.json is the fixed
# reference point; each run of this script writes the next numbered file).
#
# Usage:
#   scripts/bench.sh                 # quick pass (macro 3x, micro 1s)
#   MACRO=10x MICRO=3s scripts/bench.sh
#
# The emitted schema matches BENCH_baseline.json:
#   {"date", "go", "benchmarks": {name: {ns_per_op, B_per_op,
#    allocs_per_op, <custom metrics>}}, "derived": {...}}
set -euo pipefail
cd "$(dirname "$0")/.."

MACRO="${MACRO:-3x}" # whole-simulation benchmarks: iteration counts
MICRO="${MICRO:-1s}" # nanosecond-scale benchmarks: need wall time to settle

macro_out=$(go test -run '^$' \
    -bench '^(BenchmarkFastForward$|BenchmarkSystemRunAllocs|BenchmarkEndToEndSimulation)' \
    -benchtime "$MACRO" -benchmem . | grep -E '^Benchmark')
micro_out=$(go test -run '^$' \
    -bench '^(BenchmarkFilteringUnitThroughput|BenchmarkTraceGeneration)' \
    -benchtime "$MICRO" -benchmem . | grep -E '^Benchmark')
filter_out=$(go test -run '^$' -bench BenchmarkFilterDecision \
    -benchtime "$MICRO" -benchmem ./internal/core/ | grep -E '^Benchmark')

n=1
while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
out="BENCH_${n}.json"

printf '%s\n%s\n%s\n' "$macro_out" "$micro_out" "$filter_out" | awk \
    -v date="$(date -u +%Y-%m-%d)" \
    -v gover="$(go version | awk '{print $3}')" '
{
    name = $1
    sub(/-[0-9]+$/, "", name)        # strip the -GOMAXPROCS suffix
    line = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        if (line != "") line = line ", "
        line = line "\"" unit "\": " $i
        val[name "." unit] = $i
    }
    entries[++cnt] = "    \"" name "\": {" line "}"
}
END {
    print "{"
    print "  \"date\": \"" date "\","
    print "  \"go\": \"" gover "\","
    print "  \"benchmarks\": {"
    for (i = 1; i <= cnt; i++)
        print entries[i] (i < cnt ? "," : "")
    print "  },"
    ffx = val["BenchmarkFastForward/exact.ns_per_op"]
    fff = val["BenchmarkFastForward/fast.ns_per_op"]
    fdi = val["BenchmarkFilterDecision/interpreted.ns_per_op"]
    fdc = val["BenchmarkFilterDecision/compiled.ns_per_op"]
    print "  \"derived\": {"
    printf "    \"fast_forward_speedup\": %.2f,\n", (fff > 0 ? ffx / fff : 0)
    printf "    \"compiled_filter_speedup\": %.2f\n", (fdc > 0 ? fdi / fdc : 0)
    print "  }"
    print "}"
}' >"$out"

# Fail fast on a malformed entry: drop the file rather than committing a
# perf-trajectory point with missing or bogus numbers.
if ! go run ./scripts/benchcheck -check "$out"; then
    rm -f "$out"
    echo "bench.sh: $out failed shape validation and was removed" >&2
    exit 1
fi

echo "wrote $out"
