module fade

go 1.22
